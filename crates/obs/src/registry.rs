//! Global metrics registry: named counters, gauges, and log₂-bucketed
//! latency histograms.
//!
//! Handles are `Arc`-shared atomics, so the hot path never holds a lock —
//! the registry's `Mutex` only guards the name→handle maps during the
//! one-time lookup each call site performs through its cached `OnceLock`
//! (see [`counter_add!`](crate::counter_add) / [`span!`](crate::span)).
//! [`Registry::reset`] zeroes values *in place*, so cached handles stay
//! valid across resets (drill harnesses reset between sections).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic event count. Exact under concurrency: increments are atomic
/// adds, so totals at thread count 1/2/4 are identical for identical work.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins numeric level (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram buckets: bucket `i` counts durations with `floor(log2(ns)) == i`
/// (bucket 0 also holds sub-nanosecond readings). 2^39 ns ≈ 9 minutes; the
/// last bucket is a catch-all for anything longer.
pub const SPAN_BUCKETS: usize = 40;

/// Aggregated timings for one span name: call count, total nanoseconds, and
/// a log-scale latency histogram.
#[derive(Debug)]
pub struct SpanStats {
    calls: AtomicU64,
    total_nanos: AtomicU64,
    buckets: [AtomicU64; SPAN_BUCKETS],
}

impl Default for SpanStats {
    fn default() -> Self {
        SpanStats {
            calls: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl SpanStats {
    /// Fold one measured duration in.
    pub fn record(&self, nanos: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        let bucket = (63 - nanos.max(1).leading_zeros() as usize).min(SPAN_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of one span's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    pub name: String,
    pub calls: u64,
    pub total_nanos: u64,
    pub buckets: Vec<u64>,
}

impl SpanSnapshot {
    /// Mean nanoseconds per call (0 for an empty span).
    pub fn mean_nanos(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.calls as f64
        }
    }

    /// Approximate quantile (`q` in [0,1]) from the log₂ histogram: the
    /// geometric midpoint of the bucket holding the q-th call.
    pub fn approx_quantile(&self, q: f64) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.calls as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        2f64.powi(self.buckets.len() as i32)
    }
}

/// Point-in-time copy of the whole registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// What happened since `earlier` (a snapshot of the same registry):
    /// counter/span values subtract saturating; gauges keep their current
    /// value. Lets a session report only its own window even though the
    /// registry is process-global and cumulative.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), v - earlier.counter(name).unwrap_or(0).min(*v)))
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let base = earlier.span(&s.name);
                SpanSnapshot {
                    name: s.name.clone(),
                    calls: s.calls.saturating_sub(base.map_or(0, |b| b.calls)),
                    total_nanos: s.total_nanos.saturating_sub(base.map_or(0, |b| b.total_nanos)),
                    buckets: s
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| {
                            c.saturating_sub(base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0))
                        })
                        .collect(),
                }
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), spans }
    }
}

/// Name → handle maps behind one mutex each; see the module docs for the
/// locking story.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    spans: Mutex<BTreeMap<&'static str, Arc<SpanStats>>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(self.counters.lock().unwrap().entry(name).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(self.gauges.lock().unwrap().entry(name).or_default())
    }

    /// The span aggregate named `name`, created on first use.
    pub fn span_stats(&self, name: &'static str) -> Arc<SpanStats> {
        Arc::clone(self.spans.lock().unwrap().entry(name).or_default())
    }

    /// Copy every metric out, sorted by name (BTreeMap order).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, c)| (n.to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, g)| (n.to_string(), g.get()))
                .collect(),
            spans: self
                .spans
                .lock()
                .unwrap()
                .iter()
                .map(|(&n, s)| SpanSnapshot {
                    name: n.to_string(),
                    calls: s.calls(),
                    total_nanos: s.total_nanos(),
                    buckets: s.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                })
                .collect(),
        }
    }

    /// Zero every metric in place. Handles cached at call sites stay valid.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for s in self.spans.lock().unwrap().values() {
            s.reset();
        }
    }
}

/// The process-global registry every macro records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset_in_place() {
        let reg = Registry::default();
        let c = reg.counter("a");
        c.add(3);
        reg.counter("a").add(4);
        assert_eq!(reg.snapshot().counter("a"), Some(7));
        reg.reset();
        assert_eq!(reg.snapshot().counter("a"), Some(0));
        // The pre-reset handle still feeds the same counter.
        c.add(1);
        assert_eq!(reg.snapshot().counter("a"), Some(1));
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = Registry::default();
        reg.gauge("g").set(2.5);
        reg.gauge("g").set(-1.25);
        assert_eq!(reg.snapshot().gauge("g"), Some(-1.25));
    }

    #[test]
    fn span_buckets_are_log2() {
        let s = SpanStats::default();
        s.record(1); // bucket 0
        s.record(2); // bucket 1
        s.record(3); // bucket 1
        s.record(1024); // bucket 10
        s.record(u64::MAX); // clamped to the last bucket
        assert_eq!(s.calls(), 5);
        let buckets: Vec<u64> = s.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[10], 1);
        assert_eq!(buckets[SPAN_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_come_from_bucket_midpoints() {
        let s = SpanStats::default();
        for _ in 0..9 {
            s.record(1000); // bucket 9 (512..1024)
        }
        s.record(1 << 20); // bucket 20
        let reg = Registry::default();
        *reg.spans.lock().unwrap() = BTreeMap::from([("q", Arc::new(s))]);
        let snap = reg.snapshot();
        let q = snap.span("q").unwrap();
        let p50 = q.approx_quantile(0.5);
        assert!((512.0..2048.0).contains(&p50), "p50 {p50}");
        let p99 = q.approx_quantile(0.99);
        assert!(p99 > 1e6, "p99 {p99}");
    }

    #[test]
    fn delta_since_isolates_a_window() {
        let reg = Registry::default();
        reg.counter("w").add(10);
        reg.span_stats("s").record(100);
        let base = reg.snapshot();
        reg.counter("w").add(5);
        reg.span_stats("s").record(200);
        let delta = reg.snapshot().delta_since(&base);
        assert_eq!(delta.counter("w"), Some(5));
        let s = delta.span("s").unwrap();
        assert_eq!(s.calls, 1);
        assert_eq!(s.total_nanos, 200);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let reg = Registry::default();
        let c = reg.counter("conc");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
