//! The structured event stream: flat JSON objects, one per line.
//!
//! ## Event schema
//!
//! Every line is a flat object with at least `type` (event kind) and `t_ms`
//! (milliseconds since the sink opened, monotonic). The kinds emitted by
//! the workspace:
//!
//! | `type` | emitted by | payload fields |
//! |---|---|---|
//! | `run_manifest` | [`crate::ObsSession::begin`] | see [`crate::RunManifest`] |
//! | `epoch_start` | trainers | `epoch` |
//! | `epoch_end` | trainers | `epoch`, `seconds`, `mean_loss`, `batches`, `nan_batches`, `rollbacks`, `peak_bytes` |
//! | `batch` | trainers | `epoch`, `batch`, `loss`, `healthy` |
//! | `guard_trip` | trainers | `verdict`, `loss`, `diverged` |
//! | `prep_end` | CrossEM⁺ trainer | `seconds`, `partitions`, `pairs_per_epoch` |
//! | `checkpoint_save` | `CheckpointManager` | `path` |
//! | `checkpoint_load` | `CheckpointManager` | `path`, `source` |
//! | `cache` | `FeatureCache` | `stage` (`features`\|`proximity`), `outcome` (`hit`\|`miss`\|`evict`) |
//! | `kmeans` | `crossem::kmeans` | `points`, `k`, `iterations` |
//! | `span_summary` | [`crate::ObsSession::finish`] | `span`, `calls`, `total_s`, `mean_ms`, `p50_ms`, `p99_ms` |
//! | `counter_summary` | [`crate::ObsSession::finish`] | `counter`, `value` |
//! | `run_end` | [`crate::ObsSession::finish`] | `wall_seconds` + caller extras |
//!
//! Unknown kinds are legal (consumers skip them); nested values are not
//! (see [`crate::json`]).
//!
//! ## Atomicity
//!
//! A line is formatted fully in memory and handed to the OS as **one**
//! `write_all` on an `O_APPEND`-style handle guarded by a mutex, so
//! concurrent emitters can interleave *lines* but never bytes within a
//! line, and a crash mid-run leaves at worst one truncated final line
//! (which `obs_report` detects and reports).

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::json::{Object, Value};

/// Builder for one event line.
#[derive(Debug, Clone)]
pub struct Event(Object);

impl Event {
    /// Start an event of the given kind (`type` field).
    pub fn new(kind: &str) -> Event {
        let mut o = Object::new();
        o.push("type", kind);
        Event(o)
    }

    /// Append a field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Event {
        self.0.push(key, value.into());
        self
    }

    /// Append a `u64` losslessly: as a number when it fits `f64`'s exact
    /// integer range, as a decimal string beyond (seeds, fingerprints).
    pub fn field_u64(self, key: &str, value: u64) -> Event {
        if value < (1u64 << 53) {
            self.field(key, value as f64)
        } else {
            self.field(key, value.to_string())
        }
    }

    pub fn kind(&self) -> &str {
        self.0.str("type").unwrap_or("")
    }

    pub fn object(&self) -> &Object {
        &self.0
    }

    pub fn into_object(self) -> Object {
        self.0
    }
}

/// Append-only JSONL file with whole-line writes.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    file: Mutex<File>,
    opened: Instant,
}

impl JsonlSink {
    /// Create (truncating) the event file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<JsonlSink> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(JsonlSink { path, file: Mutex::new(file), opened: Instant::now() })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Milliseconds since the sink opened (the `t_ms` timeline).
    pub fn elapsed_ms(&self) -> f64 {
        self.opened.elapsed().as_secs_f64() * 1e3
    }

    /// Write one event as one line (single `write_all`). Errors are
    /// swallowed after the first: telemetry must never take training down.
    pub fn write(&self, event: Event) {
        let mut object = event.into_object();
        object.push("t_ms", (self.elapsed_ms() * 1000.0).round() / 1000.0);
        let mut line = object.to_json();
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

/// The process-global sink events route to while a session is live.
static SINK: RwLock<Option<Arc<JsonlSink>>> = RwLock::new(None);

/// Route [`emit`] calls to `sink` (used by [`crate::ObsSession::begin`]).
pub fn install_sink(sink: Arc<JsonlSink>) {
    *SINK.write().unwrap() = Some(sink);
}

/// Stop routing events (used by [`crate::ObsSession::finish`]).
pub fn uninstall_sink() {
    *SINK.write().unwrap() = None;
}

/// Emit an event to the installed sink, if obs is enabled and a sink is
/// installed; otherwise a branch and nothing else. This is how components
/// without a session handle (cache, k-means, checkpoint manager) publish.
pub fn emit(make: impl FnOnce() -> Event) {
    if !crate::enabled() {
        return;
    }
    let guard = SINK.read().unwrap();
    if let Some(sink) = guard.as_ref() {
        sink.write(make());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cem_obs_events_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn events_land_as_parseable_lines() {
        let path = tmp("basic");
        let sink = JsonlSink::create(&path).unwrap();
        sink.write(Event::new("epoch_start").field("epoch", 0.0));
        sink.write(
            Event::new("batch").field("epoch", 0.0).field("loss", 1.5).field("healthy", true),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let obj = Object::parse(line).unwrap();
            assert!(obj.str("type").is_some());
            assert!(obj.num("t_ms").is_some(), "t_ms stamped on every line");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn u64_fields_round_trip_losslessly() {
        let small = Event::new("x").field_u64("v", 12345).into_object();
        assert_eq!(small.num("v"), Some(12345.0));
        let big = Event::new("x").field_u64("v", u64::MAX).into_object();
        assert_eq!(big.str("v"), Some("18446744073709551615"));
    }

    #[test]
    fn emit_is_silent_without_sink_or_enable() {
        // No sink, not enabled: closure must not even run.
        emit(|| panic!("emit ran while disabled"));
        let _on = crate::force_enable();
        // Enabled but no sink: closure still must not run.
        emit(|| panic!("emit ran without a sink"));
    }

    #[test]
    fn emit_routes_to_installed_sink() {
        let path = tmp("route");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        let _on = crate::force_enable();
        install_sink(Arc::clone(&sink));
        emit(|| Event::new("cache").field("stage", "features").field("outcome", "hit"));
        uninstall_sink();
        emit(|| panic!("emit ran after uninstall"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let obj = Object::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(obj.str("type"), Some("cache"));
        assert_eq!(obj.str("outcome"), Some("hit"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_writers_never_tear_lines() {
        let path = tmp("torn");
        let sink = Arc::new(JsonlSink::create(&path).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..200 {
                        sink.write(
                            Event::new("batch")
                                .field("thread", t as f64)
                                .field("i", i as f64)
                                .field("pad", "x".repeat(100)),
                        );
                    }
                });
            }
        });
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 800);
        for line in lines {
            Object::parse(line).unwrap_or_else(|e| panic!("torn line {line:?}: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }
}
