//! Run manifests and the session that brackets an instrumented run.
//!
//! [`ObsSession::begin`] opens the JSONL sink (conventionally
//! `obs.jsonl` next to the run's checkpoints), writes the
//! [`RunManifest`] as the first line, installs the sink process-globally
//! (so sessionless components like the feature cache publish into the same
//! stream), and force-enables telemetry for its lifetime.
//! [`ObsSession::finish`] appends `span_summary`/`counter_summary` lines
//! for everything recorded *during the session* (a registry snapshot taken
//! at begin subtracts prior history) and a closing `run_end` record with
//! the wall time and any caller-supplied end-of-run metrics.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::events::{install_sink, uninstall_sink, Event, JsonlSink};
use crate::json::Value;
use crate::registry::Snapshot;
use crate::ObsGuard;

/// Compile-time build identity: enough to `git describe` the binary that
/// produced a JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace package version.
    pub version: &'static str,
    /// `CEM_GIT_DESCRIBE` baked in at compile time (CI exports it), if any.
    pub git: Option<&'static str>,
    /// Whether the binary was built with debug assertions.
    pub debug: bool,
}

/// This crate's build identity.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        git: option_env!("CEM_GIT_DESCRIBE"),
        debug: cfg!(debug_assertions),
    }
}

/// Everything needed to identify and reproduce a run, emitted as the first
/// JSONL line.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Human-readable run kind (`"crossem"`, `"crossem_plus"`, `"obs_drill"`, …).
    pub run: String,
    /// The run seed driving every epoch shuffle.
    pub seed: Option<u64>,
    /// Training-config fingerprint (see `crossem::checkpoint`).
    pub config_fingerprint: Option<u64>,
    /// Resolved kernel thread budget.
    pub threads: usize,
    /// Dataset identity.
    pub dataset: Option<DatasetStats>,
}

/// Dataset shape recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    pub name: String,
    pub entities: usize,
    pub images: usize,
}

impl RunManifest {
    pub fn new(run: impl Into<String>) -> RunManifest {
        RunManifest { run: run.into(), ..RunManifest::default() }
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    pub fn config_fingerprint(mut self, fp: u64) -> Self {
        self.config_fingerprint = Some(fp);
        self
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn dataset(mut self, name: impl Into<String>, entities: usize, images: usize) -> Self {
        self.dataset = Some(DatasetStats { name: name.into(), entities, images });
        self
    }

    /// Render as the `run_manifest` event.
    pub fn to_event(&self) -> Event {
        let build = build_info();
        let mut event = Event::new("run_manifest")
            .field("schema", 1.0)
            .field("run", self.run.as_str())
            .field("threads", self.threads as f64)
            .field("version", build.version)
            .field("git", build.git.unwrap_or("unknown"))
            .field("debug_build", build.debug);
        if let Some(seed) = self.seed {
            // Always a string: seeds are arbitrary u64s and must round-trip
            // exactly regardless of magnitude.
            event = event.field("seed", seed.to_string());
        }
        if let Some(fp) = self.config_fingerprint {
            event = event.field("config_fingerprint", format!("{fp:#018x}"));
        }
        if let Some(ds) = &self.dataset {
            event = event
                .field("dataset", ds.name.as_str())
                .field("entities", ds.entities as f64)
                .field("images", ds.images as f64);
        }
        event
    }
}

/// A live instrumented run: sink + manifest + registry window.
pub struct ObsSession {
    sink: Arc<JsonlSink>,
    start: Instant,
    baseline: Snapshot,
    finished: bool,
    _enable: ObsGuard,
}

impl ObsSession {
    /// Open `path`, write the manifest, install the sink globally, and
    /// force-enable telemetry until the session ends.
    pub fn begin(path: impl Into<PathBuf>, manifest: &RunManifest) -> io::Result<ObsSession> {
        let enable = crate::force_enable();
        let sink = Arc::new(JsonlSink::create(path)?);
        sink.write(manifest.to_event());
        install_sink(Arc::clone(&sink));
        Ok(ObsSession {
            sink,
            start: Instant::now(),
            baseline: crate::registry::global().snapshot(),
            finished: false,
            _enable: enable,
        })
    }

    pub fn path(&self) -> &Path {
        self.sink.path()
    }

    /// Write one event into this session's stream.
    pub fn emit(&self, event: Event) {
        self.sink.write(event);
    }

    /// Append span/counter summaries for this session's window plus a
    /// `run_end` record carrying `extras`, then uninstall the sink.
    pub fn finish(mut self, extras: &[(&str, Value)]) {
        self.write_summaries(extras);
    }

    fn write_summaries(&mut self, extras: &[(&str, Value)]) {
        if self.finished {
            return;
        }
        self.finished = true;
        let window = crate::registry::global().snapshot().delta_since(&self.baseline);
        for span in &window.spans {
            if span.calls == 0 {
                continue;
            }
            self.sink.write(
                Event::new("span_summary")
                    .field("span", span.name.as_str())
                    .field("calls", span.calls as f64)
                    .field("total_s", span.total_nanos as f64 / 1e9)
                    .field("mean_ms", span.mean_nanos() / 1e6)
                    .field("p50_ms", span.approx_quantile(0.5) / 1e6)
                    .field("p99_ms", span.approx_quantile(0.99) / 1e6),
            );
        }
        for (name, value) in &window.counters {
            if *value == 0 {
                continue;
            }
            self.sink.write(
                Event::new("counter_summary").field("counter", name.as_str()).field_u64("value", *value),
            );
        }
        // Gauges are levels, not rates: the summary reports the last value
        // each gauge held (e.g. the final `serve.queue_depth`), which is
        // what a dashboard resuming from this stream should display.
        for (name, value) in &window.gauges {
            self.sink.write(
                Event::new("gauge_summary").field("gauge", name.as_str()).field("value", *value),
            );
        }
        let mut end = Event::new("run_end")
            .field("wall_seconds", self.start.elapsed().as_secs_f64());
        for (key, value) in extras {
            end = end.field(key, value.clone());
        }
        self.sink.write(end);
        uninstall_sink();
    }
}

impl Drop for ObsSession {
    /// An abandoned session still closes its stream (no extras).
    fn drop(&mut self) {
        self.write_summaries(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Object;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("cem_obs_manifest_{tag}_{}.jsonl", std::process::id()))
    }

    fn parse_lines(path: &Path) -> Vec<Object> {
        std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(|l| Object::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn manifest_event_carries_identity() {
        let manifest = RunManifest::new("crossem")
            .seed(u64::MAX)
            .config_fingerprint(0xabcd)
            .threads(4)
            .dataset("CUB-IMG", 120, 480);
        let obj = manifest.to_event().into_object();
        assert_eq!(obj.str("type"), Some("run_manifest"));
        assert_eq!(obj.str("run"), Some("crossem"));
        assert_eq!(obj.str("seed"), Some("18446744073709551615"));
        assert_eq!(obj.str("config_fingerprint"), Some("0x000000000000abcd"));
        assert_eq!(obj.num("threads"), Some(4.0));
        assert_eq!(obj.num("entities"), Some(120.0));
        assert!(obj.str("version").is_some());
    }

    #[test]
    fn session_brackets_manifest_summaries_and_run_end() {
        let path = tmp("bracket");
        let session = ObsSession::begin(&path, &RunManifest::new("test")).unwrap();
        assert!(crate::enabled(), "session force-enables telemetry");
        crate::counter_add!("test.manifest.counter", 3);
        crate::gauge_set!("test.manifest.gauge", 4.5);
        crate::gauge_set!("test.manifest.gauge", 1.5);
        {
            crate::span!("test.manifest.span");
        }
        session.emit(Event::new("epoch_end").field("epoch", 0.0));
        session.finish(&[("final_loss", Value::Num(0.5))]);

        let lines = parse_lines(&path);
        assert_eq!(lines.first().unwrap().str("type"), Some("run_manifest"));
        assert_eq!(lines.last().unwrap().str("type"), Some("run_end"));
        assert_eq!(lines.last().unwrap().num("final_loss"), Some(0.5));
        assert!(lines.iter().any(|l| l.str("type") == Some("epoch_end")));
        assert!(lines
            .iter()
            .any(|l| l.str("type") == Some("span_summary")
                && l.str("span") == Some("test.manifest.span")));
        assert!(lines
            .iter()
            .any(|l| l.str("type") == Some("counter_summary")
                && l.str("counter") == Some("test.manifest.counter")
                && l.num("value") == Some(3.0)));
        assert!(
            lines.iter().any(|l| l.str("type") == Some("gauge_summary")
                && l.str("gauge") == Some("test.manifest.gauge")
                && l.num("value") == Some(1.5)),
            "gauge summary must report the last value the gauge held"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summaries_cover_only_the_session_window() {
        // History recorded before the session must not leak into it.
        {
            let _on = crate::force_enable();
            crate::counter_add!("test.manifest.window", 100);
        }
        let path = tmp("window");
        let session = ObsSession::begin(&path, &RunManifest::new("test")).unwrap();
        crate::counter_add!("test.manifest.window", 7);
        session.finish(&[]);
        let lines = parse_lines(&path);
        let summary = lines
            .iter()
            .find(|l| l.str("counter") == Some("test.manifest.window"))
            .expect("counter summarised");
        assert_eq!(summary.num("value"), Some(7.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dropped_session_still_writes_run_end() {
        let path = tmp("drop");
        {
            let _session = ObsSession::begin(&path, &RunManifest::new("test")).unwrap();
        }
        let lines = parse_lines(&path);
        assert_eq!(lines.last().unwrap().str("type"), Some("run_end"));
        std::fs::remove_file(&path).ok();
    }
}
