//! Data mapping: converting data-lake sources into one canonical graph
//! (paper Sec. II-A).
//!
//! * Relational tables — each tuple's key value becomes an entity vertex;
//!   every other attribute value becomes a value vertex connected by an edge
//!   labelled `has <column>`; declared foreign keys become entity→entity
//!   edges labelled with the column name.
//! * JSON documents — every object becomes an entity vertex (labelled by its
//!   key path or `name` field); scalar fields become value vertices; string
//!   values of the form `"@ref:<key>"` become edges to the referenced
//!   entity.
//! * Graphs are merged verbatim.
//!
//! Vertices are interned by label, so `white` appearing as the crown colour
//! of two birds becomes one shared vertex — exactly the structure the
//! paper's Figure 1(b) shows and the prompt generators exploit.

use std::collections::HashMap;

use crate::graph::{Graph, VertexId};
use crate::json::JsonValue;
use crate::table::Table;

/// Convert a single table into a fresh graph (convenience wrapper over
/// [`DataLakeBuilder`]).
pub fn table_to_graph(table: &Table) -> Graph {
    let mut builder = DataLakeBuilder::new();
    builder.add_table(table);
    builder.build()
}

/// Convert a single JSON document into a fresh graph.
pub fn json_to_graph(name: &str, value: &JsonValue) -> Graph {
    let mut builder = DataLakeBuilder::new();
    builder.add_json(name, value);
    builder.build()
}

/// Accumulates heterogeneous sources and produces one canonical graph.
pub struct DataLakeBuilder {
    graph: Graph,
    interned: HashMap<String, VertexId>,
    sources: usize,
}

impl Default for DataLakeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DataLakeBuilder {
    pub fn new() -> Self {
        DataLakeBuilder { graph: Graph::new(), interned: HashMap::new(), sources: 0 }
    }

    /// Number of sources ingested so far.
    pub fn source_count(&self) -> usize {
        self.sources
    }

    fn intern(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.interned.get(label) {
            return id;
        }
        let id = self.graph.add_vertex(label);
        self.interned.insert(label.to_string(), id);
        id
    }

    /// Ingest a relational table.
    pub fn add_table(&mut self, table: &Table) {
        self.sources += 1;
        let fk_columns: Vec<usize> = table.foreign_keys().iter().map(|(c, _)| *c).collect();
        for (row_idx, row) in table.rows().iter().enumerate() {
            let entity = self.intern(table.key_of(row_idx));
            for (col_idx, value) in row.iter().enumerate() {
                if col_idx == table.key_column() || value.is_empty() {
                    continue;
                }
                let target = self.intern(value);
                let label = if fk_columns.contains(&col_idx) {
                    table.columns()[col_idx].clone()
                } else {
                    format!("has {}", table.columns()[col_idx])
                };
                self.graph.add_edge(entity, target, label);
            }
        }
    }

    /// Ingest a JSON document rooted at an entity called `name`.
    pub fn add_json(&mut self, name: &str, value: &JsonValue) {
        self.sources += 1;
        let root = self.intern(name);
        self.add_json_value(root, value);
    }

    fn add_json_value(&mut self, parent: VertexId, value: &JsonValue) {
        match value {
            JsonValue::Object(map) => {
                for (key, field) in map {
                    match field {
                        JsonValue::Object(_) => {
                            // Nested object: its own entity, named by `name`
                            // field if present, otherwise by the key.
                            let label = field
                                .get("name")
                                .and_then(JsonValue::as_str)
                                .unwrap_or(key)
                                .to_string();
                            let child = self.intern(&label);
                            self.graph.add_edge(parent, child, key.clone());
                            self.add_json_value(child, field);
                        }
                        JsonValue::Array(items) => {
                            for item in items {
                                self.add_json_scalar_or_entity(parent, key, item);
                            }
                        }
                        other => self.add_json_scalar_or_entity(parent, key, other),
                    }
                }
            }
            JsonValue::Array(items) => {
                for item in items {
                    self.add_json_value(parent, item);
                }
            }
            scalar => self.add_json_scalar_or_entity(parent, "value", scalar),
        }
    }

    fn add_json_scalar_or_entity(&mut self, parent: VertexId, key: &str, value: &JsonValue) {
        match value {
            JsonValue::Null => {}
            JsonValue::Object(_) => {
                let label =
                    value.get("name").and_then(JsonValue::as_str).unwrap_or(key).to_string();
                let child = self.intern(&label);
                self.graph.add_edge(parent, child, key.to_string());
                self.add_json_value(child, value);
            }
            JsonValue::Array(items) => {
                for item in items {
                    self.add_json_scalar_or_entity(parent, key, item);
                }
            }
            scalar => {
                if let Some(reference) = scalar.as_reference() {
                    let target = self.intern(reference);
                    self.graph.add_edge(parent, target, key.to_string());
                } else {
                    let text = match scalar {
                        JsonValue::String(s) => s.clone(),
                        other => other.to_string(),
                    };
                    let target = self.intern(&text);
                    self.graph.add_edge(parent, target, format!("has {key}"));
                }
            }
        }
    }

    /// Ingest an existing graph, interning its vertices by label (vertices
    /// with identical labels across sources unify).
    pub fn add_graph(&mut self, other: &Graph) {
        self.sources += 1;
        let mapped: Vec<VertexId> =
            other.vertices().map(|v| self.intern(other.vertex_label(v))).collect();
        for e in 0..other.edge_count() {
            let (src, dst) = other.edge_endpoints(crate::graph::EdgeId(e));
            self.graph.add_edge(
                mapped[src.0],
                mapped[dst.0],
                other.edge_label(crate::graph::EdgeId(e)),
            );
        }
    }

    /// Look up the canonical vertex for a label ingested so far.
    pub fn vertex_for(&self, label: &str) -> Option<VertexId> {
        self.interned.get(label).copied()
    }

    /// Finish and return the canonical graph.
    pub fn build(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birds_table() -> Table {
        let mut t =
            Table::new("birds", vec!["name".into(), "crown color".into(), "wing shape".into()]);
        t.push_row(vec!["laysan albatross".into(), "white".into(), "long-wings".into()]);
        t.push_row(vec!["woodpecker".into(), "red".into(), "short-wings".into()]);
        t
    }

    #[test]
    fn table_rows_become_star_subgraphs() {
        let g = table_to_graph(&birds_table());
        let albatross = g.find_vertex("laysan albatross").unwrap();
        let neighbors: Vec<&str> =
            g.out_neighbors(albatross).iter().map(|&v| g.vertex_label(v)).collect();
        assert_eq!(neighbors, vec!["white", "long-wings"]);
        let edge = g.out_edges(albatross)[0];
        assert_eq!(g.edge_label(edge), "has crown color");
    }

    #[test]
    fn shared_values_are_interned() {
        let mut t = Table::new("birds", vec!["name".into(), "color".into()]);
        t.push_row(vec!["a".into(), "white".into()]);
        t.push_row(vec!["b".into(), "white".into()]);
        let g = table_to_graph(&t);
        // a, b, white -> 3 vertices, not 4.
        assert_eq!(g.vertex_count(), 3);
        let white = g.find_vertex("white").unwrap();
        assert_eq!(g.in_neighbors(white).len(), 2);
    }

    #[test]
    fn foreign_keys_link_entities() {
        let mut birds = Table::new("birds", vec!["name".into()]);
        birds.push_row(vec!["albatross".into()]);
        let mut sightings = Table::new("sightings", vec!["id".into(), "bird".into()])
            .with_foreign_key("bird", "birds");
        sightings.push_row(vec!["s1".into(), "albatross".into()]);

        let mut builder = DataLakeBuilder::new();
        builder.add_table(&birds);
        builder.add_table(&sightings);
        let g = builder.build();

        let s1 = g.find_vertex("s1").unwrap();
        let albatross = g.find_vertex("albatross").unwrap();
        assert_eq!(g.out_neighbors(s1), vec![albatross]);
        // FK edge keeps the bare column name (a relationship, not a "has").
        assert_eq!(g.edge_label(g.out_edges(s1)[0]), "bird");
    }

    #[test]
    fn json_objects_become_entities() {
        let doc = JsonValue::parse(
            r#"{"name": "laysan albatross", "crown": "white", "habitat": "@ref:hawaii"}"#,
        )
        .unwrap();
        let g = json_to_graph("laysan albatross", &doc);
        let root = g.find_vertex("laysan albatross").unwrap();
        let labels: Vec<&str> =
            g.out_neighbors(root).iter().map(|&v| g.vertex_label(v)).collect();
        assert!(labels.contains(&"white"));
        assert!(labels.contains(&"hawaii"));
        // The name field points at the interned root itself (same label).
        assert!(labels.contains(&"laysan albatross"));
    }

    #[test]
    fn json_arrays_fan_out() {
        let doc = JsonValue::parse(r#"{"colors": ["white", "black", "grey"]}"#).unwrap();
        let g = json_to_graph("bird", &doc);
        let root = g.find_vertex("bird").unwrap();
        assert_eq!(g.out_neighbors(root).len(), 3);
    }

    #[test]
    fn json_nested_objects_recurse() {
        let doc = JsonValue::parse(r#"{"wing": {"name": "long-wings", "color": "grey"}}"#).unwrap();
        let g = json_to_graph("albatross", &doc);
        let root = g.find_vertex("albatross").unwrap();
        let wing = g.find_vertex("long-wings").unwrap();
        let grey = g.find_vertex("grey").unwrap();
        assert!(g.out_neighbors(root).contains(&wing));
        assert!(g.out_neighbors(wing).contains(&grey));
    }

    #[test]
    fn mixed_sources_unify_on_labels() {
        let mut builder = DataLakeBuilder::new();
        builder.add_table(&birds_table());
        let doc = JsonValue::parse(r#"{"name": "laysan albatross", "food": "squid"}"#).unwrap();
        builder.add_json("laysan albatross", &doc);
        assert_eq!(builder.source_count(), 2);
        let g = builder.build();
        let albatross = g.find_vertex("laysan albatross").unwrap();
        let labels: Vec<&str> =
            g.out_neighbors(albatross).iter().map(|&v| g.vertex_label(v)).collect();
        // Table attributes and JSON attributes hang off the same entity.
        assert!(labels.contains(&"white"));
        assert!(labels.contains(&"squid"));
    }

    #[test]
    fn graphs_merge_by_label() {
        let mut g1 = Graph::new();
        let a = g1.add_vertex("a");
        let b = g1.add_vertex("b");
        g1.add_edge(a, b, "e1");
        let mut g2 = Graph::new();
        let b2 = g2.add_vertex("b");
        let c = g2.add_vertex("c");
        g2.add_edge(b2, c, "e2");

        let mut builder = DataLakeBuilder::new();
        builder.add_graph(&g1);
        builder.add_graph(&g2);
        let g = builder.build();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let b = g.find_vertex("b").unwrap();
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn null_fields_are_skipped() {
        let doc = JsonValue::parse(r#"{"a": null, "b": "x"}"#).unwrap();
        let g = json_to_graph("root", &doc);
        let root = g.find_vertex("root").unwrap();
        assert_eq!(g.out_neighbors(root).len(), 1);
    }
}
