//! Breadth-first traversal and d-hop subgraph extraction (paper Sec. III-A).

use std::collections::{HashSet, VecDeque};

use crate::graph::{EdgeId, Graph, VertexId};

/// BFS over the undirected neighbourhood starting at `start`, capped at
/// `max_depth` hops. Returns `(vertex, depth)` pairs in visit order; the
/// start vertex is first with depth 0.
pub fn bfs_order(graph: &Graph, start: VertexId, max_depth: usize) -> Vec<(VertexId, usize)> {
    let mut order = Vec::new();
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
    seen.insert(start);
    queue.push_back((start, 0));
    while let Some((v, depth)) = queue.pop_front() {
        order.push((v, depth));
        if depth == max_depth {
            continue;
        }
        for n in graph.neighbors(v) {
            if seen.insert(n) {
                queue.push_back((n, depth + 1));
            }
        }
    }
    order
}

/// The d-hop subgraph of a vertex: the vertices within `d` hops plus all
/// edges with both endpoints inside (paper: "induced by the vertices V_d
/// within d hops of v").
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Center vertex.
    pub center: VertexId,
    /// Vertices in BFS order (center first).
    pub vertices: Vec<VertexId>,
    /// Depth of each vertex, parallel to `vertices`.
    pub depths: Vec<usize>,
    /// All edges of the host graph with both endpoints in `vertices`.
    pub edges: Vec<EdgeId>,
}

impl Subgraph {
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Vertices at exactly `depth` hops.
    pub fn at_depth(&self, depth: usize) -> Vec<VertexId> {
        self.vertices
            .iter()
            .zip(&self.depths)
            .filter(|(_, &d)| d == depth)
            .map(|(&v, _)| v)
            .collect()
    }

    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }
}

/// Extract the d-hop subgraph of `v` (see [`Subgraph`]).
pub fn d_hop_subgraph(graph: &Graph, v: VertexId, d: usize) -> Subgraph {
    let order = bfs_order(graph, v, d);
    let vertices: Vec<VertexId> = order.iter().map(|&(v, _)| v).collect();
    let depths: Vec<usize> = order.iter().map(|&(_, d)| d).collect();
    let inside: HashSet<VertexId> = vertices.iter().copied().collect();
    let mut edges = Vec::new();
    for v in &vertices {
        for &e in graph.out_edges(*v) {
            let (_, dst) = graph.edge_endpoints(e);
            if inside.contains(&dst) {
                edges.push(e);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Subgraph { center: v, vertices, depths, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph a - b - c - d (undirected via paired edges).
    fn path() -> (Graph, Vec<VertexId>) {
        let mut g = Graph::new();
        let ids: Vec<VertexId> = ["a", "b", "c", "d"].iter().map(|l| g.add_vertex(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "next");
        }
        (g, ids)
    }

    #[test]
    fn bfs_depths_on_path() {
        let (g, ids) = path();
        let order = bfs_order(&g, ids[0], 10);
        assert_eq!(order, vec![(ids[0], 0), (ids[1], 1), (ids[2], 2), (ids[3], 3)]);
    }

    #[test]
    fn bfs_respects_max_depth() {
        let (g, ids) = path();
        let order = bfs_order(&g, ids[0], 1);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn bfs_undirected_reaches_in_neighbors() {
        let (g, ids) = path();
        // Start at the end of the directed chain: BFS is over undirected
        // neighbourhoods so it still reaches everything.
        let order = bfs_order(&g, ids[3], 10);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn subgraph_includes_internal_edges_only() {
        let (g, ids) = path();
        let sub = d_hop_subgraph(&g, ids[1], 1); // {a, b, c}
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2); // a->b, b->c ; c->d excluded
        assert!(sub.contains(ids[0]));
        assert!(!sub.contains(ids[3]));
    }

    #[test]
    fn at_depth_partitions_vertices() {
        let (g, ids) = path();
        let sub = d_hop_subgraph(&g, ids[0], 2);
        assert_eq!(sub.at_depth(0), vec![ids[0]]);
        assert_eq!(sub.at_depth(1), vec![ids[1]]);
        assert_eq!(sub.at_depth(2), vec![ids[2]]);
    }

    #[test]
    fn star_subgraph_matches_paper_example() {
        // Figure 3 shape: center with 3 attribute neighbours, one of which
        // has its own neighbour (2-hop).
        let mut g = Graph::new();
        let albatross = g.add_vertex("laysan albatross");
        let white = g.add_vertex("white");
        let black = g.add_vertex("black");
        let wings = g.add_vertex("long-wings");
        let grey = g.add_vertex("grey");
        g.add_edge(albatross, white, "has crown color");
        g.add_edge(albatross, black, "has under tail color");
        g.add_edge(albatross, wings, "has wing shape");
        g.add_edge(wings, grey, "has wing color");

        let one_hop = d_hop_subgraph(&g, albatross, 1);
        assert_eq!(one_hop.vertex_count(), 4);
        assert_eq!(one_hop.edge_count(), 3);

        let two_hop = d_hop_subgraph(&g, albatross, 2);
        assert_eq!(two_hop.vertex_count(), 5);
        assert_eq!(two_hop.edge_count(), 4);
        assert_eq!(two_hop.at_depth(2), vec![grey]);
    }

    #[test]
    fn zero_hop_subgraph_is_just_center() {
        let (g, ids) = path();
        let sub = d_hop_subgraph(&g, ids[2], 0);
        assert_eq!(sub.vertices, vec![ids[2]]);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let _lonely = g.add_vertex("lonely");
        let sub = d_hop_subgraph(&g, a, 5);
        assert_eq!(sub.vertex_count(), 1);
    }
}
