//! # cem-graph
//!
//! The data-lake substrate of the CrossEM reproduction: a directed labelled
//! graph type (paper Def. "Graph": `G = (V, E, L)`), relational table and
//! JSON document types, and the *data mapping* step that converts
//! structured/semi-structured sources into one canonical graph (paper
//! Sec. II-A): tuples of tables and keys of JSON objects become entities
//! (vertices); foreign keys and JSON references become relationships
//! (edges).
//!
//! Also provides the traversal primitives the prompt generators need:
//! breadth-first search and d-hop subgraph extraction (paper Sec. III-A).

pub mod graph;
pub mod json;
pub mod mapping;
pub mod table;
pub mod traversal;

pub use graph::{EdgeId, Graph, VertexId};
pub use json::JsonValue;
pub use mapping::{json_to_graph, table_to_graph, DataLakeBuilder};
pub use table::Table;
pub use traversal::{bfs_order, d_hop_subgraph, Subgraph};
