//! Relational tables: a named set of tuples over a fixed attribute schema.

/// A relational table (paper Sec. II-A: "a set of tuples T associated with a
/// set of attributes"). Values are strings, as is standard for data-lake
/// ingestion before typing.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Column index used as the entity key (tuple identity).
    key_column: usize,
    /// Columns that are foreign keys into `(table, column)` targets.
    foreign_keys: Vec<(usize, String)>,
}

impl Table {
    /// Create an empty table. The first column is the key by default.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "table must have at least one column");
        Table { name: name.into(), columns, rows: Vec::new(), key_column: 0, foreign_keys: Vec::new() }
    }

    /// Choose which column identifies the tuple's entity.
    pub fn with_key_column(mut self, column: &str) -> Self {
        self.key_column = self.column_index(column).unwrap_or_else(|| {
            panic!("key column {column:?} not in schema {:?}", self.columns)
        });
        self
    }

    /// Declare `column` a foreign key referencing entities of `target_table`.
    pub fn with_foreign_key(mut self, column: &str, target_table: &str) -> Self {
        let idx = self.column_index(column).unwrap_or_else(|| {
            panic!("fk column {column:?} not in schema {:?}", self.columns)
        });
        self.foreign_keys.push((idx, target_table.to_string()));
        self
    }

    /// Append a tuple. Panics if arity mismatches the schema.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity {} != schema arity {}", row.len(), self.columns.len());
        self.rows.push(row);
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    pub fn key_column(&self) -> usize {
        self.key_column
    }

    /// The key value of row `i`.
    pub fn key_of(&self, i: usize) -> &str {
        &self.rows[i][self.key_column]
    }

    pub fn foreign_keys(&self) -> &[(usize, String)] {
        &self.foreign_keys
    }

    /// The value at `(row, column-name)`, if the column exists.
    pub fn value(&self, row: usize, column: &str) -> Option<&str> {
        self.column_index(column).map(|c| self.rows[row][c].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birds() -> Table {
        let mut t = Table::new(
            "birds",
            vec!["name".into(), "color".into(), "wings".into(), "origin".into()],
        );
        t.push_row(vec!["laysan albatross".into(), "white".into(), "long".into(), "hawaii".into()]);
        t.push_row(vec!["woodpecker".into(), "black".into(), "short".into(), "europe".into()]);
        t
    }

    #[test]
    fn schema_and_rows() {
        let t = birds();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.columns().len(), 4);
        assert_eq!(t.value(0, "color"), Some("white"));
        assert_eq!(t.value(1, "nope"), None);
    }

    #[test]
    fn key_defaults_to_first_column() {
        let t = birds();
        assert_eq!(t.key_of(0), "laysan albatross");
    }

    #[test]
    fn custom_key_column() {
        let t = birds().with_key_column("origin");
        assert_eq!(t.key_of(1), "europe");
    }

    #[test]
    fn foreign_keys_registered() {
        let t = Table::new("sightings", vec!["id".into(), "bird".into()])
            .with_foreign_key("bird", "birds");
        assert_eq!(t.foreign_keys(), &[(1usize, "birds".to_string())]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["x".into(), "y".into()]);
    }
}
