//! Directed labelled graph `G = (V, E, L)`.

use std::collections::BTreeSet;

/// Index of a vertex in its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub usize);

/// Index of an edge in its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
struct Vertex {
    label: String,
    out: Vec<EdgeId>,
    inc: Vec<EdgeId>,
}

#[derive(Debug, Clone)]
struct Edge {
    src: VertexId,
    dst: VertexId,
    label: String,
}

/// A directed graph with string labels on vertices and edges.
///
/// `L` from the paper's definition — the set of all unique words in labels —
/// is exposed via [`Graph::label_words`].
#[derive(Debug, Clone, Default)]
pub struct Graph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a vertex with the given label; returns its id.
    pub fn add_vertex(&mut self, label: impl Into<String>) -> VertexId {
        let id = VertexId(self.vertices.len());
        self.vertices.push(Vertex { label: label.into(), out: Vec::new(), inc: Vec::new() });
        id
    }

    /// Add a directed labelled edge; returns its id. Panics on dangling ids.
    pub fn add_edge(&mut self, src: VertexId, dst: VertexId, label: impl Into<String>) -> EdgeId {
        assert!(src.0 < self.vertices.len(), "dangling source vertex {src:?}");
        assert!(dst.0 < self.vertices.len(), "dangling target vertex {dst:?}");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { src, dst, label: label.into() });
        self.vertices[src.0].out.push(id);
        self.vertices[dst.0].inc.push(id);
        id
    }

    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All vertex ids, in insertion order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertices.len()).map(VertexId)
    }

    /// `L(v)` — the label of a vertex.
    pub fn vertex_label(&self, v: VertexId) -> &str {
        &self.vertices[v.0].label
    }

    /// `L(e)` — the label of an edge.
    pub fn edge_label(&self, e: EdgeId) -> &str {
        &self.edges[e.0].label
    }

    /// Endpoints of an edge as `(src, dst)`.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let edge = &self.edges[e.0];
        (edge.src, edge.dst)
    }

    /// Outgoing edges of `v`.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.vertices[v.0].out
    }

    /// Incoming edges of `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.vertices[v.0].inc
    }

    /// Out-neighbours (targets of outgoing edges), in edge order.
    pub fn out_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.vertices[v.0].out.iter().map(|&e| self.edges[e.0].dst).collect()
    }

    /// In-neighbours (sources of incoming edges), in edge order.
    pub fn in_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        self.vertices[v.0].inc.iter().map(|&e| self.edges[e.0].src).collect()
    }

    /// Undirected neighbourhood (out ∪ in), deduplicated, sorted by id.
    /// The prompt generators treat association as symmetric, matching the
    /// paper's use of "neighbours" for both directions.
    pub fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut set: BTreeSet<VertexId> = BTreeSet::new();
        set.extend(self.out_neighbors(v));
        set.extend(self.in_neighbors(v));
        set.remove(&v); // self loops are not neighbours
        set.into_iter().collect()
    }

    /// Degree in the undirected sense (distinct neighbours).
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Find the first vertex with an exact label, if any (test helper and
    /// small-data convenience; O(V)).
    pub fn find_vertex(&self, label: &str) -> Option<VertexId> {
        self.vertices.iter().position(|v| v.label == label).map(VertexId)
    }

    /// `L` — the set of unique whitespace-separated words across all vertex
    /// and edge labels.
    pub fn label_words(&self) -> BTreeSet<String> {
        let mut words = BTreeSet::new();
        for v in &self.vertices {
            words.extend(v.label.split_whitespace().map(str::to_string));
        }
        for e in &self.edges {
            words.extend(e.label.split_whitespace().map(str::to_string));
        }
        words
    }

    /// Undirected adjacency list over all vertices (index = vertex id).
    /// This is the format the GNN layers consume.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        (0..self.vertices.len())
            .map(|i| self.neighbors(VertexId(i)).into_iter().map(|v| v.0).collect())
            .collect()
    }

    /// Merge another graph into this one; returns the vertex-id offset that
    /// was applied to `other`'s ids.
    pub fn merge(&mut self, other: &Graph) -> usize {
        let offset = self.vertices.len();
        for v in &other.vertices {
            self.add_vertex(v.label.clone());
        }
        for e in &other.edges {
            self.add_edge(
                VertexId(e.src.0 + offset),
                VertexId(e.dst.0 + offset),
                e.label.clone(),
            );
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, VertexId, VertexId, VertexId) {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b, "ab");
        g.add_edge(b, c, "bc");
        g.add_edge(c, a, "ca");
        (g, a, b, c)
    }

    #[test]
    fn counts_and_labels() {
        let (g, a, _, _) = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertex_label(a), "a");
        assert_eq!(g.edge_label(EdgeId(0)), "ab");
    }

    #[test]
    fn directed_neighbourhoods() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.out_neighbors(a), vec![b]);
        assert_eq!(g.in_neighbors(a), vec![c]);
        assert_eq!(g.neighbors(a), vec![b, c]);
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn self_loops_excluded_from_neighbours() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        g.add_edge(a, a, "loop");
        assert!(g.neighbors(a).is_empty());
        assert_eq!(g.out_neighbors(a), vec![a]); // raw view keeps the loop
    }

    #[test]
    fn duplicate_edges_deduped_in_neighbors() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "x");
        g.add_edge(a, b, "y");
        g.add_edge(b, a, "z");
        assert_eq!(g.neighbors(a), vec![b]);
        assert_eq!(g.out_neighbors(a).len(), 2);
    }

    #[test]
    fn label_words_unions_vertices_and_edges() {
        let mut g = Graph::new();
        let a = g.add_vertex("laysan albatross");
        let b = g.add_vertex("white");
        g.add_edge(a, b, "has crown color");
        let words = g.label_words();
        for w in ["laysan", "albatross", "white", "has", "crown", "color"] {
            assert!(words.contains(w), "missing {w}");
        }
        assert_eq!(words.len(), 6);
    }

    #[test]
    fn adjacency_matches_neighbors() {
        let (g, a, ..) = triangle();
        let adj = g.adjacency();
        assert_eq!(adj[a.0], vec![1, 2]);
    }

    #[test]
    fn merge_offsets_ids() {
        let (mut g, ..) = triangle();
        let (h, ..) = triangle();
        let offset = g.merge(&h);
        assert_eq!(offset, 3);
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
        // Edges of the merged copy connect shifted ids.
        let (src, dst) = g.edge_endpoints(EdgeId(3));
        assert_eq!(src, VertexId(3));
        assert_eq!(dst, VertexId(4));
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn dangling_edge_panics() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        g.add_edge(a, VertexId(9), "bad");
    }

    #[test]
    fn find_vertex_by_label() {
        let (g, _, b, _) = triangle();
        assert_eq!(g.find_vertex("b"), Some(b));
        assert_eq!(g.find_vertex("zzz"), None);
    }
}
