//! A minimal JSON value type with parser and serialiser.
//!
//! Hand-rolled because only `serde` (not `serde_json`) is on the offline
//! dependency allowlist, and the data-lake mapping needs just enough JSON to
//! model semi-structured sources: objects, arrays, strings, numbers, bools,
//! null, plus `"@ref:<key>"` strings which the mapping treats as references
//! to other entities.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object keys are ordered (BTreeMap) so graph construction is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a JSON document. Returns a descriptive error on malformed input.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(value)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Whether this is a `"@ref:<key>"` reference string; returns the key.
    pub fn as_reference(&self) -> Option<&str> {
        self.as_str().and_then(|s| s.strip_prefix("@ref:"))
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::String(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { message: "invalid utf-8 in number".into(), offset: start })?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { message: format!("bad number {text:?}"), offset: start })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
                            code = code * 16
                                + (c as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad hex in \\u escape"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(first) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let width = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let start = self.pos - 1;
                    let end = (start + width).min(self.bytes.len());
                    self.pos = end;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(JsonValue::parse("-3.5e2").unwrap(), JsonValue::Number(-350.0));
        assert_eq!(
            JsonValue::parse("\"hi\\nthere\"").unwrap(),
            JsonValue::String("hi\nthere".into())
        );
    }

    #[test]
    fn parse_nested_document() {
        let doc = r#"{"bird": {"name": "laysan albatross", "colors": ["white", "black"], "wingspan": 2.03, "rare": false}}"#;
        let v = JsonValue::parse(doc).unwrap();
        let bird = v.get("bird").unwrap();
        assert_eq!(bird.get("name").unwrap().as_str(), Some("laysan albatross"));
        assert_eq!(bird.get("colors").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(bird.get("wingspan").unwrap().as_number(), Some(2.03));
    }

    #[test]
    fn reference_strings_detected() {
        let v = JsonValue::parse(r#"{"habitat": "@ref:hawaii"}"#).unwrap();
        assert_eq!(v.get("habitat").unwrap().as_reference(), Some("hawaii"));
        assert_eq!(JsonValue::String("plain".into()).as_reference(), None);
    }

    #[test]
    fn display_roundtrip() {
        let doc = r#"{"a":[1,2,{"b":"c"}],"d":null}"#;
        let v = JsonValue::parse(doc).unwrap();
        let reparsed = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn unicode_escape_and_utf8_passthrough() {
        assert_eq!(
            JsonValue::parse("\"\\u00e9\"").unwrap(),
            JsonValue::String("é".into())
        );
        assert_eq!(JsonValue::parse("\"héllo\"").unwrap(), JsonValue::String("héllo".into()));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = JsonValue::parse("{\"a\": }").unwrap_err();
        assert!(err.offset > 0);
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("tru").is_err());
        assert!(JsonValue::parse("1 2").is_err()); // trailing
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(BTreeMap::new()));
        assert_eq!(JsonValue::parse("[ ]").unwrap(), JsonValue::Array(vec![]));
    }
}
