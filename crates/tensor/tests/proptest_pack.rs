//! Property tests for the packed-GEMM support layer and broadcast shape
//! rules.
//!
//! Packing invariants: `pack_b` followed by `unpack` must reproduce the
//! source matrix exactly (the pack layout reorders, never transforms), the
//! transpose-pack must agree with transpose-then-pack, and the packed GEMM
//! tier must stay bit-identical across thread counts just like the blocked
//! tier.
//!
//! Broadcast invariants mirror numeric-library semantics: shapes align from
//! the trailing dimension, and each aligned pair must be equal or contain
//! a 1. The accept/reject decision is checked against an independent oracle
//! written straight from that rule.

use cem_tensor::pack;
use cem_tensor::ops::broadcast;
use cem_tensor::{kernels, Shape};
use proptest::prelude::*;

/// Deterministic xorshift fill, same scheme as proptest_par.rs.
fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1 << 24) as f32 - 0.5
        })
        .collect()
}

/// Reference implementation of the trailing-aligned broadcast rule.
fn oracle_compatible(a: &[usize], b: &[usize]) -> bool {
    let rank = a.len().max(b.len());
    for i in 0..rank {
        let da = if i < a.len() { a[a.len() - 1 - i] } else { 1 };
        let db = if i < b.len() { b[b.len() - 1 - i] } else { 1 };
        if da != db && da != 1 && db != 1 {
            return false;
        }
    }
    true
}

/// The vendored proptest has no `prop_oneof`/`prop_map`; generate small
/// codes and decode them into dimension sizes that make both 1s (broadcast
/// axes) and mismatched sizes likely.
fn dims_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..6, 1..4)
}

fn decode_dims(codes: &[usize]) -> Vec<usize> {
    codes.iter().map(|&c| [1, 1, 2, 3, 4, 7][c]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_unpack_is_identity(
        k in 1usize..300,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let b = seeded(seed, k * n);
        let packed = pack::pack_b(&b, k, n);
        prop_assert_eq!(&pack::unpack(&packed), &b);
    }

    #[test]
    fn pack_bt_matches_transpose_then_pack(
        k in 1usize..80,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        // bt is the [n, k] row-major transpose of a [k, n] matrix b.
        let bt = seeded(seed, n * k);
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let via_t = pack::pack_b_t(&bt, n, k);
        let direct = pack::pack_b(&b, k, n);
        prop_assert_eq!(pack::unpack(&via_t), pack::unpack(&direct));
    }

    #[test]
    fn packed_gemm_is_thread_count_invariant(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Force the packed tier regardless of problem size so small shapes
        // exercise the packed schedule too.
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x5a5a, k * n);
        let mut serial = vec![0.0f32; m * n];
        kernels::gemm_packed_with_threads(&a, &b, &mut serial, m, k, n, 1);
        for threads in 2..=5 {
            let mut parallel = vec![0.0f32; m * n];
            kernels::gemm_packed_with_threads(&a, &b, &mut parallel, m, k, n, threads);
            prop_assert_eq!(
                &serial,
                &parallel,
                "packed tier: thread count {} changed the result bitwise",
                threads
            );
        }
    }

    #[test]
    fn packed_tier_matches_scalar_reference_bitwise(
        m in 1usize..16,
        k in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1000,
    ) {
        // The auto tier (SIMD when the `simd` feature + AVX are present)
        // must be bit-identical to the always-scalar reference tier.
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x33cc, k * n);
        let mut auto_c = vec![0.0f32; m * n];
        let mut scalar_c = vec![0.0f32; m * n];
        kernels::gemm_packed_with_threads(&a, &b, &mut auto_c, m, k, n, 1);
        kernels::gemm_packed_scalar_with_threads(&a, &b, &mut scalar_c, m, k, n, 1);
        let auto_bits: Vec<u32> = auto_c.iter().map(|v| v.to_bits()).collect();
        let scalar_bits: Vec<u32> = scalar_c.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(auto_bits, scalar_bits);
    }

    #[test]
    fn broadcast_compat_matches_oracle(ca in dims_strategy(), cb in dims_strategy()) {
        let a = decode_dims(&ca);
        let b = decode_dims(&cb);
        let sa = Shape::new(&a);
        let sb = Shape::new(&b);
        let expect = oracle_compatible(&a, &b);
        prop_assert_eq!(broadcast::compatible(&sa, &sb), expect);
        // Symmetry, and broadcast_shape agrees with the accept/reject verdict.
        prop_assert_eq!(broadcast::compatible(&sb, &sa), expect);
        prop_assert_eq!(broadcast::broadcast_shape(&sa, &sb).is_some(), expect);
    }

    #[test]
    fn broadcast_shape_takes_elementwise_max(ca in dims_strategy(), cb in dims_strategy()) {
        let a = decode_dims(&ca);
        let b = decode_dims(&cb);
        if let Some(out) = broadcast_shape_of(&a, &b) {
            let rank = a.len().max(b.len());
            prop_assert_eq!(out.len(), rank);
            for i in 0..rank {
                let da = if i < a.len() { a[a.len() - 1 - i] } else { 1 };
                let db = if i < b.len() { b[b.len() - 1 - i] } else { 1 };
                prop_assert_eq!(out[rank - 1 - i], da.max(db));
            }
        } else {
            prop_assert!(!oracle_compatible(&a, &b));
        }
    }
}

fn broadcast_shape_of(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    broadcast::broadcast_shape(&Shape::new(a), &Shape::new(b)).map(|s| s.dims().to_vec())
}
