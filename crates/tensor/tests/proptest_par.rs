//! Property-based determinism tests for the parallel kernel layer: every
//! primitive in `par`/`kernels` must produce *bit-identical* output at any
//! thread count, for arbitrary shapes — including shapes far smaller than a
//! thread count's worth of rows.
//!
//! All tests use the explicit `*_with_threads` entry points (never the
//! process-global override), so they are safe under the test harness's own
//! thread pool.

use cem_tensor::{kernels, par};
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len)
}

/// Run a GEMM variant at thread counts 1..=5 and assert every output is
/// bitwise equal to the single-threaded one.
fn assert_threads_agree(
    run: impl Fn(&mut [f32], usize),
    out_len: usize,
) -> Result<(), TestCaseError> {
    let mut serial = vec![0.0f32; out_len];
    run(&mut serial, 1);
    for threads in 2..=5 {
        let mut parallel = vec![0.0f32; out_len];
        run(&mut parallel, threads);
        prop_assert_eq!(
            &serial,
            &parallel,
            "thread count {} changed the result bitwise",
            threads
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_is_thread_count_invariant(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0xabcd, k * n);
        assert_threads_agree(
            |c, t| kernels::gemm_with_threads(&a, &b, c, m, k, n, t),
            m * n,
        )?;
    }

    #[test]
    fn gemm_nt_is_thread_count_invariant(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        // B is [n, k] for the NT variant.
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x1234, n * k);
        assert_threads_agree(
            |c, t| kernels::gemm_nt_with_threads(&a, &b, c, m, k, n, t),
            m * n,
        )?;
    }

    #[test]
    fn gemm_tn_is_thread_count_invariant(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        // The TN variant computes c[k,n] += a[m,k]^T @ b[m,n].
        let a = seeded(seed, m * k);
        let b = seeded(seed ^ 0x7777, m * n);
        assert_threads_agree(
            |c, t| kernels::gemm_tn_with_threads(&a, &b, c, m, k, n, t),
            k * n,
        )?;
    }

    #[test]
    fn gemm_accumulates_into_existing_output(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        init in vec_f32(1),
    ) {
        // The kernels contract is `c += a @ b`: a pre-filled output must be
        // accumulated into identically at every thread count.
        let a = seeded(11, m * k);
        let b = seeded(13, k * n);
        assert_threads_agree(
            |c, t| {
                c.fill(init[0]);
                kernels::gemm_with_threads(&a, &b, c, m, k, n, t);
            },
            m * n,
        )?;
    }

    #[test]
    fn map_into_is_thread_count_invariant(src in vec_f32(97)) {
        let mut serial = vec![0.0f32; src.len()];
        par::map_into(&src, &mut serial, 1, |x| x * 1.5 - 0.25);
        for threads in 2..=5 {
            let mut parallel = vec![0.0f32; src.len()];
            par::map_into(&src, &mut parallel, threads, |x| x * 1.5 - 0.25);
            prop_assert_eq!(&serial, &parallel);
        }
    }

    #[test]
    fn zip_into_is_thread_count_invariant(a in vec_f32(103), b in vec_f32(103)) {
        let mut serial = vec![0.0f32; a.len()];
        par::zip_into(&a, &b, &mut serial, 1, |x, y| x * y + x - y);
        for threads in 2..=5 {
            let mut parallel = vec![0.0f32; a.len()];
            par::zip_into(&a, &b, &mut parallel, threads, |x, y| x * y + x - y);
            prop_assert_eq!(&serial, &parallel);
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_exactly_once(
        rows in 1usize..40,
        width in 1usize..8,
        threads in 1usize..6,
    ) {
        let mut data = vec![0.0f32; rows * width];
        par::par_chunks_mut(&mut data, width, threads, |start, block| {
            for (i, chunk) in block.chunks_mut(width).enumerate() {
                let row = start + i;
                for v in chunk {
                    *v += row as f32 + 1.0;
                }
            }
        });
        for r in 0..rows {
            for c in 0..width {
                prop_assert_eq!(data[r * width + c], r as f32 + 1.0);
            }
        }
    }
}

/// Deterministic xorshift fill so shapes and data derive from the same
/// proptest case without a second RNG dependency.
fn seeded(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1 << 24) as f32 - 0.5
        })
        .collect()
}
