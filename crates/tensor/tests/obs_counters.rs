//! Registry exactness under the `par` pool: counters incremented from
//! worker threads must total exactly, and the pool's own dispatch counters
//! must describe the partitioning faithfully at every thread count.

use std::sync::{Arc, Mutex, MutexGuard};

use cem_tensor::kernels;
use cem_tensor::par;

/// The registry is process-global and the harness runs tests concurrently,
/// so tests asserting exact counter deltas take this lock.
fn registry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Counter increments issued from inside `par_chunks_mut` workers are exact
/// at 1, 2, and 4 threads: one add per chunk, no lost updates.
#[test]
fn worker_side_counter_totals_are_exact() {
    let _serial = registry_lock();
    let _on = cem_obs::force_enable();
    let registry = cem_obs::global();
    for threads in [1usize, 2, 4] {
        let counter = registry.counter("test.par.chunks_seen");
        let before = counter.get();
        let mut data = vec![0.0f32; 10_000];
        let counter_ref = Arc::clone(&counter);
        par::par_chunks_mut(&mut data, 1, threads, move |_first, block| {
            for v in block.iter_mut() {
                *v += 1.0;
                counter_ref.add(1);
            }
        });
        assert_eq!(
            counter.get() - before,
            10_000,
            "threads={threads}: every element counted exactly once"
        );
        assert!(data.iter().all(|&v| v == 1.0));
    }
}

/// The pool's own dispatch counters: a serial call bumps `par.serial`, a
/// parallel one bumps `par.scopes` and accounts its spawned workers.
#[test]
fn pool_dispatch_counters_track_partitioning() {
    let _serial = registry_lock();
    let _on = cem_obs::force_enable();
    let registry = cem_obs::global();

    let serial = registry.counter("par.serial");
    let scopes = registry.counter("par.scopes");
    let spawned = registry.counter("par.threads_spawned");

    let (serial0, scopes0, spawned0) = (serial.get(), scopes.get(), spawned.get());
    let mut data = vec![0.0f32; 64];
    par::par_chunks_mut(&mut data, 1, 1, |_f, block| block.fill(1.0));
    assert_eq!(serial.get() - serial0, 1);
    assert_eq!(scopes.get() - scopes0, 0);

    let (serial1, scopes1, spawned1) = (serial.get(), scopes.get(), spawned.get());
    par::par_chunks_mut(&mut data, 1, 4, |_f, block| block.fill(2.0));
    assert_eq!(serial.get() - serial1, 0);
    assert_eq!(scopes.get() - scopes1, 1);
    // 64 chunks over 4 threads → 3 spawned workers + the calling thread.
    assert_eq!(spawned.get() - spawned1, 3);
    let _ = spawned0;
}

/// Auto-threaded GEMM records which path it took; tiny problems are serial
/// fallbacks, huge ones go blocked-parallel (given a thread budget > 1).
#[test]
fn gemm_dispatch_counters_split_by_work_size() {
    let _serial = registry_lock();
    let _on = cem_obs::force_enable();
    let _threads = par::ThreadsGuard::new(4);
    let registry = cem_obs::global();
    let blocked = registry.counter("gemm.dispatch.blocked_parallel");
    let fallback = registry.counter("gemm.dispatch.serial_fallback");

    let (b0, f0) = (blocked.get(), fallback.get());
    let a = vec![1.0f32; 4 * 4];
    let b = vec![1.0f32; 4 * 4];
    let mut c = vec![0.0f32; 4 * 4];
    kernels::gemm(&a, &b, &mut c, 4, 4, 4);
    assert_eq!(fallback.get() - f0, 1, "4x4x4 is far below PAR_GEMM_THRESHOLD");
    assert_eq!(blocked.get() - b0, 0);

    // 160^3 = 4,096,000 multiply-adds > PAR_GEMM_THRESHOLD (2^21).
    let (b1, f1) = (blocked.get(), fallback.get());
    let n = 160usize;
    let a = vec![0.5f32; n * n];
    let b = vec![0.5f32; n * n];
    let mut c = vec![0.0f32; n * n];
    kernels::gemm(&a, &b, &mut c, n, n, n);
    assert_eq!(blocked.get() - b1, 1, "160^3 work dispatches blocked-parallel");
    assert_eq!(fallback.get() - f1, 0);
}

/// The instrumentation itself must not perturb results: identical outputs
/// with obs enabled and disabled (the bit-identity contract, kernel-level).
#[test]
fn instrumented_gemm_is_bit_identical_to_uninstrumented() {
    let n = 48usize;
    let a: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.37).sin()).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.11).cos()).collect();

    let mut c_off = vec![0.0f32; n * n];
    kernels::gemm(&a, &b, &mut c_off, n, n, n);

    let c_on = {
        let _on = cem_obs::force_enable();
        let mut c = vec![0.0f32; n * n];
        kernels::gemm(&a, &b, &mut c, n, n, n);
        c
    };
    assert_eq!(c_off, c_on);
}
