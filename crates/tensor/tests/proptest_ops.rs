//! Property-based tests over the tensor engine: algebraic identities of the
//! forward ops and gradient-checking of the backward ops against central
//! finite differences.

use cem_tensor::Tensor;
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len)
}

/// Central finite differences of `f` at `x`.
fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Vec<f32> {
    let base = x.to_vec();
    (0..base.len())
        .map(|i| {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            (f(&Tensor::from_vec(plus, x.dims())) - f(&Tensor::from_vec(minus, x.dims())))
                / (2.0 * eps)
        })
        .collect()
}

fn grads_close(analytic: &[f32], numeric: &[f32], tol: f32) -> bool {
    analytic.iter().zip(numeric).all(|(a, n)| {
        let scale = 1.0f32.max(a.abs()).max(n.abs());
        (a - n).abs() / scale < tol
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- algebraic identities ----------

    #[test]
    fn mul_is_commutative(a in vec_f32(8), b in vec_f32(8)) {
        let ta = Tensor::from_vec(a, &[8]);
        let tb = Tensor::from_vec(b, &[8]);
        prop_assert_eq!(ta.mul(&tb).to_vec(), tb.mul(&ta).to_vec());
    }

    #[test]
    fn add_has_zero_identity(a in vec_f32(10)) {
        let t = Tensor::from_vec(a.clone(), &[2, 5]);
        let z = Tensor::zeros(&[2, 5]);
        prop_assert_eq!(t.add(&z).to_vec(), a);
    }

    #[test]
    fn neg_is_involutive(a in vec_f32(6)) {
        let t = Tensor::from_vec(a.clone(), &[6]);
        let back = t.neg().neg().to_vec();
        for (x, y) in back.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn exp_ln_inverse_for_positive(a in prop::collection::vec(0.1f32..5.0, 7)) {
        let t = Tensor::from_vec(a.clone(), &[7]);
        let round = t.ln().exp().to_vec();
        for (x, y) in round.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_identity_is_noop(a in vec_f32(12)) {
        let t = Tensor::from_vec(a.clone(), &[3, 4]);
        let out = t.matmul(&Tensor::eye(4)).to_vec();
        for (x, y) in out.iter().zip(&a) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn sum_equals_mean_times_numel(a in vec_f32(9)) {
        let t = Tensor::from_vec(a, &[9]);
        prop_assert!((t.sum().item() - t.mean().item() * 9.0).abs() < 1e-3);
    }

    #[test]
    fn gather_then_stack_matches_rows(a in vec_f32(12), idx in prop::collection::vec(0usize..4, 1..6)) {
        let t = Tensor::from_vec(a, &[4, 3]);
        let g = t.gather_rows(&idx);
        for (pos, &i) in idx.iter().enumerate() {
            for c in 0..3 {
                prop_assert_eq!(g.at2(pos, c), t.at2(i, c));
            }
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in vec_f32(10)) {
        let t = Tensor::from_vec(a, &[2, 5]);
        let s = t.softmax_rows();
        prop_assert_eq!(t.argmax_rows(), s.argmax_rows());
    }

    // ---------- gradient checks ----------

    #[test]
    fn grad_check_mul(a in vec_f32(5), b in vec_f32(5)) {
        let ta = Tensor::from_vec(a, &[5]).requires_grad();
        let tb = Tensor::from_vec(b, &[5]);
        ta.mul(&tb).sum().backward();
        let fd = finite_diff(|t| t.mul(&tb).sum().item(), &ta, 1e-2);
        prop_assert!(grads_close(&ta.grad().unwrap(), &fd, 0.05));
    }

    #[test]
    fn grad_check_matmul(a in vec_f32(6), b in vec_f32(6)) {
        let ta = Tensor::from_vec(a, &[2, 3]).requires_grad();
        let tb = Tensor::from_vec(b, &[3, 2]);
        ta.matmul(&tb).sum().backward();
        let fd = finite_diff(|t| t.matmul(&tb).sum().item(), &ta, 1e-2);
        prop_assert!(grads_close(&ta.grad().unwrap(), &fd, 0.05));
    }

    #[test]
    fn grad_check_tanh(a in vec_f32(6)) {
        let t = Tensor::from_vec(a, &[6]).requires_grad();
        t.tanh().sum().backward();
        let fd = finite_diff(|x| x.tanh().sum().item(), &t, 1e-2);
        prop_assert!(grads_close(&t.grad().unwrap(), &fd, 0.05));
    }

    #[test]
    fn grad_check_softmax(a in vec_f32(8)) {
        let t = Tensor::from_vec(a, &[2, 4]).requires_grad();
        let w = Tensor::from_vec((0..8).map(|i| i as f32 * 0.3 - 1.0).collect(), &[2, 4]);
        t.softmax_rows().mul(&w).sum().backward();
        let fd = finite_diff(|x| x.softmax_rows().mul(&w).sum().item(), &t, 1e-2);
        prop_assert!(grads_close(&t.grad().unwrap(), &fd, 0.08));
    }

    #[test]
    fn grad_check_l2_normalize(a in prop::collection::vec(0.2f32..3.0, 6)) {
        let t = Tensor::from_vec(a, &[2, 3]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, -0.5, 0.3, 0.7, 0.2, -0.9], &[2, 3]);
        t.l2_normalize_rows().mul(&w).sum().backward();
        let fd = finite_diff(|x| x.l2_normalize_rows().mul(&w).sum().item(), &t, 1e-2);
        prop_assert!(grads_close(&t.grad().unwrap(), &fd, 0.08));
    }

    #[test]
    fn grad_check_cross_entropy(a in vec_f32(9), target in 0usize..3) {
        let t = Tensor::from_vec(a, &[3, 3]).requires_grad();
        let targets = [target, (target + 1) % 3, (target + 2) % 3];
        t.cross_entropy_rows(&targets).backward();
        let fd = finite_diff(|x| x.cross_entropy_rows(&targets).item(), &t, 1e-2);
        prop_assert!(grads_close(&t.grad().unwrap(), &fd, 0.08));
    }

    // ---------- autograd structure ----------

    #[test]
    fn grad_accumulates_linearly_across_uses(a in vec_f32(4), k in 1usize..5) {
        // y = k · sum(a) via k separate additions -> grad = k per element.
        let t = Tensor::from_vec(a, &[4]).requires_grad();
        let mut acc = Tensor::zeros(&[4]);
        for _ in 0..k {
            acc = acc.add(&t);
        }
        acc.sum().backward();
        let g = t.grad().unwrap();
        for v in g {
            prop_assert!((v - k as f32).abs() < 1e-5);
        }
    }

    #[test]
    fn no_grad_blocks_all_recording(a in vec_f32(4)) {
        let t = Tensor::from_vec(a, &[4]).requires_grad();
        let y = cem_tensor::no_grad(|| t.mul_scalar(2.0).relu().sum());
        prop_assert!(!y.has_grad_fn());
    }

    // ---------- memory accounting ----------

    #[test]
    fn live_bytes_return_to_baseline(n in 1usize..2000) {
        let before = cem_tensor::memory::live_bytes();
        {
            let _t = Tensor::zeros(&[n]);
            prop_assert!(cem_tensor::memory::live_bytes() >= before + n * 4);
        }
        prop_assert_eq!(cem_tensor::memory::live_bytes(), before);
    }
}
