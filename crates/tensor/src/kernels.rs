//! Blocked, parallel GEMM kernels over raw `f32` slices.
//!
//! These are the compute core of [`Tensor::matmul`](crate::Tensor::matmul)
//! and [`Tensor::matmul_nt`](crate::Tensor::matmul_nt) — forward *and*
//! backward closures route through the same three accumulate kernels. They
//! are exposed publicly so the bench harnesses can time them directly.
//!
//! Design (see DESIGN.md §9):
//!
//! * **Register tiling** — `gemm`/`gemm_tn` process four output rows per
//!   sweep of the shared right-operand row (4× fewer passes over `b`), and
//!   `gemm_nt` uses a four-accumulator unrolled dot product. Inner loops
//!   are bounds-check-free iterator zips, which the compiler vectorises.
//! * **No sparsity branches** — the seed kernels skipped `a[i,k] == 0.0`;
//!   that branch defeats vectorisation on dense data and only helped
//!   degenerate sparse inputs, so it is gone.
//! * **Row-parallel** — output rows are partitioned over
//!   [`par::par_chunks_mut`]. Each element accumulates in the same `k` (or
//!   `m`) order at every thread count, so results are bit-identical to the
//!   serial path.

use crate::par;

/// Four-accumulator unrolled dot product. The accumulation schedule is
/// fixed (independent of caller context), so every call site sees identical
/// rounding.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (qa, qb) in (&mut ac).zip(&mut bc) {
        acc[0] += qa[0] * qb[0];
        acc[1] += qa[1] * qb[1];
        acc[2] += qa[2] * qb[2];
        acc[3] += qa[3] * qb[3];
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        sum += x * y;
    }
    sum
}

/// Record how an auto-threaded GEMM dispatched: the blocked parallel path
/// (work cleared [`par::PAR_GEMM_THRESHOLD`] with threads available) or the
/// serial fallback. `perf_drill` reports the split from the registry.
#[inline]
fn count_gemm_dispatch(threads: usize) {
    if threads > 1 {
        cem_obs::counter_add!("gemm.dispatch.blocked_parallel", 1);
    } else {
        cem_obs::counter_add!("gemm.dispatch.serial_fallback", 1);
    }
}

/// `c[m,n] += a[m,k] @ b[k,n]`, auto thread count.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    gemm_with_threads(a, b, c, m, k, n, threads);
}

/// `c[m,n] += a[m,k] @ b[n,k]^T`, auto thread count.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    gemm_nt_with_threads(a, b, c, m, k, n, threads);
}

/// `c[k,n] += a[m,k]^T @ b[m,n]`, auto thread count.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    gemm_tn_with_threads(a, b, c, m, k, n, threads);
}

/// `c[m,n] += a[m,k] @ b[k,n]` with an explicit thread budget.
pub fn gemm_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |row0, block| gemm_row_block(a, b, block, row0, k, n));
}

/// Serial kernel for a contiguous block of output rows starting at `row0`.
///
/// 4-row × 4-k micro-kernel in ikj order: each sweep streams four `b` rows
/// across four `c` rows, so every pass over the outputs retires sixteen
/// multiply-adds per element-visit instead of one.
///
/// Determinism invariant: each `c` element receives `+= x0·v0 + x1·v1 +
/// x2·v2 + x3·v3` per 4-k group (then `+= x·v` per leftover k), in
/// increasing `k` order. The row-remainder path below uses the *same*
/// grouping, so the schedule depends only on `k` — never on the thread
/// layout or on where a row falls inside a block — and results are
/// bit-identical at every thread count.
fn gemm_row_block(a: &[f32], b: &[f32], c_block: &mut [f32], row0: usize, k: usize, n: usize) {
    // Cache blocking over k: every row group in this block sweeps the same
    // `K_BLOCK`-row panel of `b` before the next panel is touched, so on
    // large inputs the panel stays cache-resident instead of `b` being
    // streamed from memory once per row group. K_BLOCK is a multiple of 4,
    // so the panel edges coincide with the 4-k group boundaries and the
    // per-element schedule is exactly that of the unblocked loop.
    const K_BLOCK: usize = 128;
    let mut k0 = 0usize;
    while k0 < k {
        let k1 = (k0 + K_BLOCK).min(k);
        gemm_row_block_panel(a, b, c_block, row0, k, n, k0, k1);
        k0 = k1;
    }
}

/// One k panel `[k0, k1)` of [`gemm_row_block`].
#[allow(clippy::too_many_arguments)]
fn gemm_row_block_panel(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let rows = c_block.len() / n;
    let mut rows_iter = c_block.chunks_exact_mut(n);
    let mut r = 0usize;
    while rows - r >= 4 {
        let c0 = rows_iter.next().unwrap();
        let c1 = rows_iter.next().unwrap();
        let c2 = rows_iter.next().unwrap();
        let c3 = rows_iter.next().unwrap();
        let i = row0 + r;
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut kk = k0;
        // Two 4-k groups per j sweep: each group is its own `+=` into `c`
        // (two sequential adds), so the per-element schedule is exactly
        // that of two consecutive single-group sweeps — only the c/b
        // memory traffic is halved.
        while k1 - kk >= 8 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let b4 = &b[(kk + 4) * n..(kk + 4) * n + n];
            let b5 = &b[(kk + 5) * n..(kk + 5) * n + n];
            let b6 = &b[(kk + 6) * n..(kk + 6) * n + n];
            let b7 = &b[(kk + 7) * n..(kk + 7) * n + n];
            let ga: [[f32; 4]; 4] = [
                [a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]],
                [a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]],
                [a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]],
                [a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]],
            ];
            let gb: [[f32; 4]; 4] = [
                [a0[kk + 4], a0[kk + 5], a0[kk + 6], a0[kk + 7]],
                [a1[kk + 4], a1[kk + 5], a1[kk + 6], a1[kk + 7]],
                [a2[kk + 4], a2[kk + 5], a2[kk + 6], a2[kk + 7]],
                [a3[kk + 4], a3[kk + 5], a3[kk + 6], a3[kk + 7]],
            ];
            for j in 0..n {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                let (w0, w1, w2, w3) = (b4[j], b5[j], b6[j], b7[j]);
                let t0 = c0[j] + (ga[0][0] * v0 + ga[0][1] * v1 + ga[0][2] * v2 + ga[0][3] * v3);
                c0[j] = t0 + (gb[0][0] * w0 + gb[0][1] * w1 + gb[0][2] * w2 + gb[0][3] * w3);
                let t1 = c1[j] + (ga[1][0] * v0 + ga[1][1] * v1 + ga[1][2] * v2 + ga[1][3] * v3);
                c1[j] = t1 + (gb[1][0] * w0 + gb[1][1] * w1 + gb[1][2] * w2 + gb[1][3] * w3);
                let t2 = c2[j] + (ga[2][0] * v0 + ga[2][1] * v1 + ga[2][2] * v2 + ga[2][3] * v3);
                c2[j] = t2 + (gb[2][0] * w0 + gb[2][1] * w1 + gb[2][2] * w2 + gb[2][3] * w3);
                let t3 = c3[j] + (ga[3][0] * v0 + ga[3][1] * v1 + ga[3][2] * v2 + ga[3][3] * v3);
                c3[j] = t3 + (gb[3][0] * w0 + gb[3][1] * w1 + gb[3][2] * w2 + gb[3][3] * w3);
            }
            kk += 8;
        }
        while k1 - kk >= 4 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let (x00, x01, x02, x03) = (a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]);
            let (x10, x11, x12, x13) = (a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]);
            let (x20, x21, x22, x23) = (a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]);
            let (x30, x31, x32, x33) = (a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]);
            for j in 0..n {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                c0[j] += x00 * v0 + x01 * v1 + x02 * v2 + x03 * v3;
                c1[j] += x10 * v0 + x11 * v1 + x12 * v2 + x13 * v3;
                c2[j] += x20 * v0 + x21 * v1 + x22 * v2 + x23 * v3;
                c3[j] += x30 * v0 + x31 * v1 + x32 * v2 + x33 * v3;
            }
            kk += 4;
        }
        for kk in kk..k1 {
            let b_row = &b[kk * n..(kk + 1) * n];
            let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            for ((((d0, d1), d2), d3), &bv) in
                c0.iter_mut().zip(c1.iter_mut()).zip(c2.iter_mut()).zip(c3.iter_mut()).zip(b_row)
            {
                *d0 += x0 * bv;
                *d1 += x1 * bv;
                *d2 += x2 * bv;
                *d3 += x3 * bv;
            }
        }
        r += 4;
    }
    // Leftover rows (< 4 in this block): same 4-k grouping as the main
    // path, one row at a time — see the determinism invariant above.
    for c_row in rows_iter {
        let i = row0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        let mut kk = k0;
        while k1 - kk >= 4 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let (x0, x1, x2, x3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            for j in 0..n {
                c_row[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
            }
            kk += 4;
        }
        for kk in kk..k1 {
            let b_row = &b[kk * n..(kk + 1) * n];
            let x = a_row[kk];
            for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                *dst += x * bv;
            }
        }
        r += 1;
    }
}

/// `c[m,n] += a[m,k] @ b[n,k]^T` (`c[i,j] = Σ_k a[i,k]·b[j,k]`) with an
/// explicit thread budget — the similarity-matrix workhorse.
pub fn gemm_nt_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |row0, block| {
        for (r, c_row) in block.chunks_exact_mut(n).enumerate() {
            let i = row0 + r;
            let a_row = &a[i * k..(i + 1) * k];
            for (j, dst) in c_row.iter_mut().enumerate() {
                *dst += dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

/// `c[k,n] += a[m,k]^T @ b[m,n]` (`c[p,q] = Σ_i a[i,p]·b[i,q]`) with an
/// explicit thread budget. Workers own disjoint blocks of `c`'s rows (the
/// `p` dimension) and sweep all of `a`/`b`, so each element accumulates in
/// `i` order at every thread count.
pub fn gemm_tn_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |p0, block| {
        let prows = block.len() / n;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let b_row = &b[i * n..(i + 1) * n];
            let mut rows_iter = block.chunks_exact_mut(n);
            let mut pp = 0usize;
            while prows - pp >= 4 {
                let c0 = rows_iter.next().unwrap();
                let c1 = rows_iter.next().unwrap();
                let c2 = rows_iter.next().unwrap();
                let c3 = rows_iter.next().unwrap();
                let p = p0 + pp;
                let (x0, x1, x2, x3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                for ((((d0, d1), d2), d3), &bv) in c0
                    .iter_mut()
                    .zip(c1.iter_mut())
                    .zip(c2.iter_mut())
                    .zip(c3.iter_mut())
                    .zip(b_row)
                {
                    *d0 += x0 * bv;
                    *d1 += x1 * bv;
                    *d2 += x2 * bv;
                    *d3 += x3 * bv;
                }
                pp += 4;
            }
            for c_row in rows_iter {
                let x = a_row[p0 + pp];
                for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                    *dst += x * bv;
                }
                pp += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple loop, the reference the kernels are checked against.
    fn reference_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += (a[i * k + kk] as f64) * (b[kk * n + j] as f64);
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG so tests need no RNG dependency; values in [-2, 2).
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1 << 22) as f32 - 2.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_reference_all_row_remainders() {
        for m in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let (k, n) = (6, 5);
            let a = filled(m * k, 11);
            let b = filled(k * n, 22);
            let mut c = vec![0.0f32; m * n];
            gemm_with_threads(&a, &b, &mut c, m, k, n, 1);
            let want = reference_gemm(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "m={m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_are_bit_identical_across_thread_counts() {
        let (m, k, n) = (13, 9, 11);
        let a = filled(m * k, 3);
        let b = filled(k * n, 5);
        let bt = filled(n * k, 7);
        let b_tn = filled(m * n, 9);
        for threads in [2usize, 3, 4, 8] {
            let mut c1 = vec![0.0f32; m * n];
            let mut cp = vec![0.0f32; m * n];
            gemm_with_threads(&a, &b, &mut c1, m, k, n, 1);
            gemm_with_threads(&a, &b, &mut cp, m, k, n, threads);
            assert_eq!(c1, cp, "gemm threads={threads}");

            let mut d1 = vec![0.0f32; m * n];
            let mut dp = vec![0.0f32; m * n];
            gemm_nt_with_threads(&a, &bt, &mut d1, m, k, n, 1);
            gemm_nt_with_threads(&a, &bt, &mut dp, m, k, n, threads);
            assert_eq!(d1, dp, "gemm_nt threads={threads}");

            let mut e1 = vec![0.0f32; k * n];
            let mut ep = vec![0.0f32; k * n];
            gemm_tn_with_threads(&a, &b_tn, &mut e1, m, k, n, 1);
            gemm_tn_with_threads(&a, &b_tn, &mut ep, m, k, n, threads);
            assert_eq!(e1, ep, "gemm_tn threads={threads}");
        }
    }

    #[test]
    fn accumulate_semantics_preserved() {
        // Kernels add into c rather than overwrite.
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![10.0f32; m * n];
        gemm_with_threads(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(c, vec![13.0; 4]);
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..9 {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 + 1.0) * 0.5).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - want).abs() < 1e-4, "len={len}");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_nt_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_tn_with_threads(&[], &[], &mut c, 4, 0, 0, 4);
    }
}
