//! Blocked, parallel GEMM kernels over raw `f32` slices.
//!
//! These are the compute core of [`Tensor::matmul`](crate::Tensor::matmul)
//! and [`Tensor::matmul_nt`](crate::Tensor::matmul_nt) — forward *and*
//! backward closures route through the same three accumulate kernels. They
//! are exposed publicly so the bench harnesses can time them directly.
//!
//! Design (see DESIGN.md §9):
//!
//! * **Two tiers, dispatched on shape alone.** Work at or above
//!   [`PACKED_MIN_WORK`] multiply-adds goes through the *packed* stack:
//!   `B` is packed once into cache-aligned `KC × NR` panel strips
//!   ([`crate::pack`]) and an [`MR`]`×`[`NR`] register micro-kernel
//!   ([`crate::microkernel`]) streams them. Smaller work keeps the original
//!   *blocked* kernels (packing overhead would dominate). The dispatch
//!   predicate sees only `(m, k, n)` — never the thread budget — so a given
//!   problem takes the same path, hence the same arithmetic schedule, at
//!   every thread count.
//! * **Register tiling** — the blocked `gemm`/`gemm_tn` process four output
//!   rows per sweep of the shared right-operand row, `gemm_nt` uses a
//!   four-accumulator unrolled dot product, and the packed micro-kernel
//!   retires a 4×16 tile per k step with 8-lane groups the compiler (or the
//!   `simd` feature's AVX path) maps onto vector registers.
//! * **No sparsity branches** — the seed kernels skipped `a[i,k] == 0.0`;
//!   that branch defeats vectorisation on dense data and only helped
//!   degenerate sparse inputs, so it is gone.
//! * **Row-parallel** — output rows are partitioned over
//!   [`par::par_chunks_mut`] (packed paths use the [`MR`]-aligned variant so
//!   block seams fall on tile boundaries). Each element accumulates in the
//!   same fixed order at every thread count, so results are bit-identical
//!   to the serial path.

use crate::microkernel::{AutoTiles, ScalarTiles, Tiles};
use crate::pack::{self, PackedB, KC, MR, NR};
use crate::par;

/// Four-accumulator unrolled dot product. The accumulation schedule is
/// fixed (independent of caller context), so every call site sees identical
/// rounding.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (qa, qb) in (&mut ac).zip(&mut bc) {
        acc[0] += qa[0] * qb[0];
        acc[1] += qa[1] * qb[1];
        acc[2] += qa[2] * qb[2];
        acc[3] += qa[3] * qb[3];
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        sum += x * y;
    }
    sum
}

/// Record how an auto-threaded GEMM dispatched: the blocked parallel path
/// (work cleared [`par::PAR_GEMM_THRESHOLD`] with threads available) or the
/// serial fallback. `perf_drill` reports the split from the registry.
#[inline]
fn count_gemm_dispatch(threads: usize) {
    if threads > 1 {
        cem_obs::counter_add!("gemm.dispatch.blocked_parallel", 1);
    } else {
        cem_obs::counter_add!("gemm.dispatch.serial_fallback", 1);
    }
}

/// Multiply-add count (`m·k·n`) at which the packed-panel stack takes over
/// from the blocked kernels. Below this, packing `B` costs more than the
/// strided reads it saves; above it, the packed panels stay cache-resident
/// across row sweeps and the micro-kernel's register tile dominates.
///
/// The predicate is a pure function of the problem shape so that dispatch —
/// and therefore the floating-point schedule — is identical at every thread
/// count.
pub const PACKED_MIN_WORK: usize = 1 << 20;

/// True when `(m, k, n)` routes through the packed stack.
#[inline]
pub fn uses_packed_path(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PACKED_MIN_WORK
}

/// Record which kernel tier a dispatching entry point chose.
#[inline]
fn count_gemm_tier(m: usize, k: usize, n: usize) {
    if uses_packed_path(m, k, n) {
        cem_obs::counter_add!("gemm.tier.packed", 1);
    } else {
        cem_obs::counter_add!("gemm.tier.blocked", 1);
    }
}

/// `c[m,n] += a[m,k] @ b[k,n]`, auto thread count.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    count_gemm_tier(m, k, n);
    gemm_with_threads(a, b, c, m, k, n, threads);
}

/// `c[m,n] += a[m,k] @ b[n,k]^T`, auto thread count.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    count_gemm_tier(m, k, n);
    gemm_nt_with_threads(a, b, c, m, k, n, threads);
}

/// `c[k,n] += a[m,k]^T @ b[m,n]`, auto thread count.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::auto_threads_gemm(m * k * n);
    count_gemm_dispatch(threads);
    count_gemm_tier(m, k, n);
    gemm_tn_with_threads(a, b, c, m, k, n, threads);
}

/// `c[m,n] += a[m,k] @ b[k,n]` with an explicit thread budget. Dispatches
/// to the packed stack for large work (see [`PACKED_MIN_WORK`]), the
/// blocked kernel otherwise.
pub fn gemm_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    if uses_packed_path(m, k, n) {
        gemm_packed_with_threads(a, b, c, m, k, n, threads);
    } else {
        gemm_blocked_with_threads(a, b, c, m, k, n, threads);
    }
}

/// The blocked (non-packing) `gemm` tier, public so the benches can compare
/// tiers directly at any size.
pub fn gemm_blocked_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |row0, block| gemm_row_block(a, b, block, row0, k, n));
}

/// The packed `gemm` tier: pack `B`, then run the panel macro-kernel.
/// Public so benches/tests can force this tier at any size.
pub fn gemm_packed_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let packed = pack::pack_b(b, k, n);
    packed_gemm_with_threads::<AutoTiles>(a, &packed, c, m, threads);
}

/// `c[m,n] += a[m,k] @ B` against a `B` that was packed ahead of time with
/// [`pack::pack_b`] / [`pack::pack_b_t`] (`k = packed.k()`,
/// `n = packed.n()`). This is the batched panel-scoring entry point for
/// callers that keep long-lived packed panels (the serving shard index packs
/// each shard's embeddings once at build time and scores every wave's query
/// batch against the resident panel), so pack cost is paid once instead of
/// per call.
///
/// The per-element accumulation schedule depends only on `packed.k()` —
/// never on `m`, the thread budget, or where a row falls in a block (see
/// [`crate::microkernel`]) — so scoring a coalesced `m`-row batch is
/// bit-identical to `m` separate single-row calls.
pub fn gemm_prepacked_with_threads(
    a: &[f32],
    packed: &PackedB,
    c: &mut [f32],
    m: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * packed.k());
    debug_assert_eq!(c.len(), m * packed.n());
    cem_obs::counter_add!("gemm.tier.prepacked", 1);
    packed_gemm_with_threads::<AutoTiles>(a, packed, c, m, threads);
}

/// Packed `gemm` forced through the always-scalar micro-kernel — the
/// bit-exact reference the `simd` path is checked against.
pub fn gemm_packed_scalar_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let packed = pack::pack_b(b, k, n);
    packed_gemm_with_threads::<ScalarTiles>(a, &packed, c, m, threads);
}

/// Row block size of the packed macro-kernel: rows of `a` re-swept against
/// one resident panel strip before moving on. `MC · KC · 4` bytes of `a`
/// (64 KiB) plus one 16 KiB strip fit comfortably in L2.
const MC: usize = 64;

/// Panel macro-kernel over a pre-packed `B`: `c[m,n] += a[m,k] @ B` where
/// `k = packed.k()`, `n = packed.n()`. Generic over the micro-kernel tile
/// set so the auto (possibly SIMD) and always-scalar variants share one
/// loop nest.
///
/// Determinism invariant (shared with the micro-kernel, see
/// [`crate::microkernel`]): each `c` element accumulates one register value
/// per `KC` panel, panels in ascending `k` order, `+=` once per panel. The
/// panel grid depends only on `k`; the `MC`/strip iteration order only
/// reorders *which elements* are computed when, never the schedule *within*
/// an element. Thread partitioning is `MR`-aligned so block seams fall on
/// tile boundaries, but even remainder rows use the same per-element
/// schedule (`tile1` ≡ one row of `tile4`).
fn packed_gemm_with_threads<T: Tiles>(
    a: &[f32],
    packed: &PackedB,
    c: &mut [f32],
    m: usize,
    threads: usize,
) {
    let n = packed.n();
    let k = packed.k();
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    par::par_chunks_mut_aligned(c, n, MR, threads, |row0, block| {
        packed_row_block::<T>(a, k, packed, block, row0);
    });
}

/// One thread's contiguous row block of the packed macro-kernel.
fn packed_row_block<T: Tiles>(
    a: &[f32],
    k: usize,
    packed: &PackedB,
    c_block: &mut [f32],
    row0: usize,
) {
    let n = packed.n();
    let rows = c_block.len() / n;
    let n_strips = packed.n_strips();
    let mut kk0 = 0usize;
    while kk0 < k {
        let h = KC.min(k - kk0);
        let mut ic = 0usize;
        while ic < rows {
            let ic_end = (ic + MC).min(rows);
            for s in 0..n_strips {
                let strip = packed.strip(kk0, h, s);
                let j0 = s * NR;
                let w = NR.min(n - j0);
                let mut r = ic;
                while ic_end - r >= MR {
                    let i = row0 + r;
                    let acc = T::tile4(
                        &a[i * k..(i + 1) * k],
                        &a[(i + 1) * k..(i + 2) * k],
                        &a[(i + 2) * k..(i + 3) * k],
                        &a[(i + 3) * k..(i + 4) * k],
                        kk0,
                        strip,
                    );
                    for (dr, acc_row) in acc.iter().enumerate() {
                        let base = (r + dr) * n + j0;
                        for (dst, &v) in c_block[base..base + w].iter_mut().zip(&acc_row[..w]) {
                            *dst += v;
                        }
                    }
                    r += MR;
                }
                while r < ic_end {
                    let i = row0 + r;
                    let acc = T::tile1(&a[i * k..(i + 1) * k], kk0, strip);
                    let base = r * n + j0;
                    for (dst, &v) in c_block[base..base + w].iter_mut().zip(&acc[..w]) {
                        *dst += v;
                    }
                    r += 1;
                }
            }
            ic = ic_end;
        }
        kk0 += KC;
    }
}

/// Serial kernel for a contiguous block of output rows starting at `row0`.
///
/// 4-row × 4-k micro-kernel in ikj order: each sweep streams four `b` rows
/// across four `c` rows, so every pass over the outputs retires sixteen
/// multiply-adds per element-visit instead of one.
///
/// Determinism invariant: each `c` element receives `+= x0·v0 + x1·v1 +
/// x2·v2 + x3·v3` per 4-k group (then `+= x·v` per leftover k), in
/// increasing `k` order. The row-remainder path below uses the *same*
/// grouping, so the schedule depends only on `k` — never on the thread
/// layout or on where a row falls inside a block — and results are
/// bit-identical at every thread count.
fn gemm_row_block(a: &[f32], b: &[f32], c_block: &mut [f32], row0: usize, k: usize, n: usize) {
    // Cache blocking over k: every row group in this block sweeps the same
    // `K_BLOCK`-row panel of `b` before the next panel is touched, so on
    // large inputs the panel stays cache-resident instead of `b` being
    // streamed from memory once per row group. K_BLOCK is a multiple of 4,
    // so the panel edges coincide with the 4-k group boundaries and the
    // per-element schedule is exactly that of the unblocked loop.
    const K_BLOCK: usize = 128;
    let mut k0 = 0usize;
    while k0 < k {
        let k1 = (k0 + K_BLOCK).min(k);
        gemm_row_block_panel(a, b, c_block, row0, k, n, k0, k1);
        k0 = k1;
    }
}

/// One k panel `[k0, k1)` of [`gemm_row_block`].
#[allow(clippy::too_many_arguments)]
fn gemm_row_block_panel(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    row0: usize,
    k: usize,
    n: usize,
    k0: usize,
    k1: usize,
) {
    let rows = c_block.len() / n;
    let mut rows_iter = c_block.chunks_exact_mut(n);
    let mut r = 0usize;
    while rows - r >= 4 {
        let c0 = rows_iter.next().unwrap();
        let c1 = rows_iter.next().unwrap();
        let c2 = rows_iter.next().unwrap();
        let c3 = rows_iter.next().unwrap();
        let i = row0 + r;
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut kk = k0;
        // Two 4-k groups per j sweep: each group is its own `+=` into `c`
        // (two sequential adds), so the per-element schedule is exactly
        // that of two consecutive single-group sweeps — only the c/b
        // memory traffic is halved.
        while k1 - kk >= 8 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let b4 = &b[(kk + 4) * n..(kk + 4) * n + n];
            let b5 = &b[(kk + 5) * n..(kk + 5) * n + n];
            let b6 = &b[(kk + 6) * n..(kk + 6) * n + n];
            let b7 = &b[(kk + 7) * n..(kk + 7) * n + n];
            let ga: [[f32; 4]; 4] = [
                [a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]],
                [a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]],
                [a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]],
                [a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]],
            ];
            let gb: [[f32; 4]; 4] = [
                [a0[kk + 4], a0[kk + 5], a0[kk + 6], a0[kk + 7]],
                [a1[kk + 4], a1[kk + 5], a1[kk + 6], a1[kk + 7]],
                [a2[kk + 4], a2[kk + 5], a2[kk + 6], a2[kk + 7]],
                [a3[kk + 4], a3[kk + 5], a3[kk + 6], a3[kk + 7]],
            ];
            for j in 0..n {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                let (w0, w1, w2, w3) = (b4[j], b5[j], b6[j], b7[j]);
                let t0 = c0[j] + (ga[0][0] * v0 + ga[0][1] * v1 + ga[0][2] * v2 + ga[0][3] * v3);
                c0[j] = t0 + (gb[0][0] * w0 + gb[0][1] * w1 + gb[0][2] * w2 + gb[0][3] * w3);
                let t1 = c1[j] + (ga[1][0] * v0 + ga[1][1] * v1 + ga[1][2] * v2 + ga[1][3] * v3);
                c1[j] = t1 + (gb[1][0] * w0 + gb[1][1] * w1 + gb[1][2] * w2 + gb[1][3] * w3);
                let t2 = c2[j] + (ga[2][0] * v0 + ga[2][1] * v1 + ga[2][2] * v2 + ga[2][3] * v3);
                c2[j] = t2 + (gb[2][0] * w0 + gb[2][1] * w1 + gb[2][2] * w2 + gb[2][3] * w3);
                let t3 = c3[j] + (ga[3][0] * v0 + ga[3][1] * v1 + ga[3][2] * v2 + ga[3][3] * v3);
                c3[j] = t3 + (gb[3][0] * w0 + gb[3][1] * w1 + gb[3][2] * w2 + gb[3][3] * w3);
            }
            kk += 8;
        }
        while k1 - kk >= 4 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let (x00, x01, x02, x03) = (a0[kk], a0[kk + 1], a0[kk + 2], a0[kk + 3]);
            let (x10, x11, x12, x13) = (a1[kk], a1[kk + 1], a1[kk + 2], a1[kk + 3]);
            let (x20, x21, x22, x23) = (a2[kk], a2[kk + 1], a2[kk + 2], a2[kk + 3]);
            let (x30, x31, x32, x33) = (a3[kk], a3[kk + 1], a3[kk + 2], a3[kk + 3]);
            for j in 0..n {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                c0[j] += x00 * v0 + x01 * v1 + x02 * v2 + x03 * v3;
                c1[j] += x10 * v0 + x11 * v1 + x12 * v2 + x13 * v3;
                c2[j] += x20 * v0 + x21 * v1 + x22 * v2 + x23 * v3;
                c3[j] += x30 * v0 + x31 * v1 + x32 * v2 + x33 * v3;
            }
            kk += 4;
        }
        for kk in kk..k1 {
            let b_row = &b[kk * n..(kk + 1) * n];
            let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
            for ((((d0, d1), d2), d3), &bv) in
                c0.iter_mut().zip(c1.iter_mut()).zip(c2.iter_mut()).zip(c3.iter_mut()).zip(b_row)
            {
                *d0 += x0 * bv;
                *d1 += x1 * bv;
                *d2 += x2 * bv;
                *d3 += x3 * bv;
            }
        }
        r += 4;
    }
    // Leftover rows (< 4 in this block): same 4-k grouping as the main
    // path, one row at a time — see the determinism invariant above.
    for c_row in rows_iter {
        let i = row0 + r;
        let a_row = &a[i * k..(i + 1) * k];
        let mut kk = k0;
        while k1 - kk >= 4 {
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            let (x0, x1, x2, x3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
            for j in 0..n {
                c_row[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
            }
            kk += 4;
        }
        for kk in kk..k1 {
            let b_row = &b[kk * n..(kk + 1) * n];
            let x = a_row[kk];
            for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                *dst += x * bv;
            }
        }
        r += 1;
    }
}

/// `c[m,n] += a[m,k] @ b[n,k]^T` (`c[i,j] = Σ_k a[i,k]·b[j,k]`) with an
/// explicit thread budget — the similarity-matrix workhorse. Large work is
/// transpose-packed (no materialised `B^T`) and runs the same packed
/// macro-kernel as `gemm`.
pub fn gemm_nt_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    if uses_packed_path(m, k, n) {
        gemm_nt_packed_with_threads(a, b, c, m, k, n, threads);
    } else {
        gemm_nt_blocked_with_threads(a, b, c, m, k, n, threads);
    }
}

/// Packed `gemm_nt` tier, public for benches/tests.
pub fn gemm_nt_packed_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let packed = pack::pack_b_t(b, n, k);
    packed_gemm_with_threads::<AutoTiles>(a, &packed, c, m, threads);
}

/// The dot-product `gemm_nt` tier, public for benches/tests.
pub fn gemm_nt_blocked_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |row0, block| {
        for (r, c_row) in block.chunks_exact_mut(n).enumerate() {
            let i = row0 + r;
            let a_row = &a[i * k..(i + 1) * k];
            for (j, dst) in c_row.iter_mut().enumerate() {
                *dst += dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    });
}

/// `c[k,n] += a[m,k]^T @ b[m,n]` (`c[p,q] = Σ_i a[i,p]·b[i,q]`) with an
/// explicit thread budget. Large work transposes `a` into a fresh `k × m`
/// buffer and runs the packed macro-kernel (left rows become contiguous);
/// the rest keeps the streaming blocked kernel.
pub fn gemm_tn_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    if uses_packed_path(m, k, n) {
        gemm_tn_packed_with_threads(a, b, c, m, k, n, threads);
    } else {
        gemm_tn_blocked_with_threads(a, b, c, m, k, n, threads);
    }
}

/// Packed `gemm_tn` tier, public for benches/tests. Note the packed
/// reduction runs over `i` in `KC` panels with a register accumulator —
/// the same schedule as the other packed variants.
pub fn gemm_tn_packed_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    // c[k,n] = a^T[k,m] @ b[m,n]: transpose a once, then it is a plain gemm
    // with (M, K, N) = (k, m, n).
    let at = pack::transpose_mk(a, m, k);
    let packed = pack::pack_b(b, m, n);
    packed_gemm_with_threads::<AutoTiles>(&at, &packed, c, k, threads);
}

/// The streaming blocked `gemm_tn` tier, public for benches/tests.
pub fn gemm_tn_blocked_with_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    if k == 0 || n == 0 {
        return;
    }
    par::par_chunks_mut(c, n, threads, |p0, block| {
        let prows = block.len() / n;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let b_row = &b[i * n..(i + 1) * n];
            let mut rows_iter = block.chunks_exact_mut(n);
            let mut pp = 0usize;
            while prows - pp >= 4 {
                let c0 = rows_iter.next().unwrap();
                let c1 = rows_iter.next().unwrap();
                let c2 = rows_iter.next().unwrap();
                let c3 = rows_iter.next().unwrap();
                let p = p0 + pp;
                let (x0, x1, x2, x3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                for ((((d0, d1), d2), d3), &bv) in c0
                    .iter_mut()
                    .zip(c1.iter_mut())
                    .zip(c2.iter_mut())
                    .zip(c3.iter_mut())
                    .zip(b_row)
                {
                    *d0 += x0 * bv;
                    *d1 += x1 * bv;
                    *d2 += x2 * bv;
                    *d3 += x3 * bv;
                }
                pp += 4;
            }
            for c_row in rows_iter {
                let x = a_row[p0 + pp];
                for (dst, &bv) in c_row.iter_mut().zip(b_row) {
                    *dst += x * bv;
                }
                pp += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook triple loop, the reference the kernels are checked against.
    fn reference_gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += (a[i * k + kk] as f64) * (b[kk * n + j] as f64);
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG so tests need no RNG dependency; values in [-2, 2).
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1 << 22) as f32 - 2.0
            })
            .collect()
    }

    #[test]
    fn gemm_matches_reference_all_row_remainders() {
        for m in [1usize, 2, 3, 4, 5, 7, 8, 9] {
            let (k, n) = (6, 5);
            let a = filled(m * k, 11);
            let b = filled(k * n, 22);
            let mut c = vec![0.0f32; m * n];
            gemm_with_threads(&a, &b, &mut c, m, k, n, 1);
            let want = reference_gemm(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "m={m}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_are_bit_identical_across_thread_counts() {
        let (m, k, n) = (13, 9, 11);
        let a = filled(m * k, 3);
        let b = filled(k * n, 5);
        let bt = filled(n * k, 7);
        let b_tn = filled(m * n, 9);
        for threads in [2usize, 3, 4, 8] {
            let mut c1 = vec![0.0f32; m * n];
            let mut cp = vec![0.0f32; m * n];
            gemm_with_threads(&a, &b, &mut c1, m, k, n, 1);
            gemm_with_threads(&a, &b, &mut cp, m, k, n, threads);
            assert_eq!(c1, cp, "gemm threads={threads}");

            let mut d1 = vec![0.0f32; m * n];
            let mut dp = vec![0.0f32; m * n];
            gemm_nt_with_threads(&a, &bt, &mut d1, m, k, n, 1);
            gemm_nt_with_threads(&a, &bt, &mut dp, m, k, n, threads);
            assert_eq!(d1, dp, "gemm_nt threads={threads}");

            let mut e1 = vec![0.0f32; k * n];
            let mut ep = vec![0.0f32; k * n];
            gemm_tn_with_threads(&a, &b_tn, &mut e1, m, k, n, 1);
            gemm_tn_with_threads(&a, &b_tn, &mut ep, m, k, n, threads);
            assert_eq!(e1, ep, "gemm_tn threads={threads}");
        }
    }

    /// Shapes that exercise panel boundaries (k > KC), strip padding
    /// (n % NR ≠ 0), MC seams, and row remainders — small enough to run in
    /// tests, forced through the packed tier explicitly.
    fn packed_probe_shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (1, 1, 1),
            (5, 7, 3),
            (MR, KC, NR),
            (MR + 3, KC + 19, NR + 5),
            (MC + 9, 2 * KC + 1, 2 * NR + 11),
            (3, 40, 70),
        ]
    }

    #[test]
    fn packed_gemm_matches_reference() {
        for (m, k, n) in packed_probe_shapes() {
            let a = filled(m * k, 31);
            let b = filled(k * n, 47);
            let mut c = vec![0.0f32; m * n];
            gemm_packed_with_threads(&a, &b, &mut c, m, k, n, 1);
            let want = reference_gemm(&a, &b, m, k, n);
            for (idx, (x, y)) in c.iter().zip(&want).enumerate() {
                assert!(
                    (x - y).abs() < 2e-3 * y.abs().max(1.0),
                    "({m},{k},{n}) idx={idx}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn packed_nt_tn_match_blocked_numerically() {
        for (m, k, n) in packed_probe_shapes() {
            let a = filled(m * k, 3);
            let bt = filled(n * k, 5);
            let b_tn = filled(m * n, 9);

            let mut nt_packed = vec![0.0f32; m * n];
            let mut nt_blocked = vec![0.0f32; m * n];
            gemm_nt_packed_with_threads(&a, &bt, &mut nt_packed, m, k, n, 1);
            gemm_nt_blocked_with_threads(&a, &bt, &mut nt_blocked, m, k, n, 1);
            for (x, y) in nt_packed.iter().zip(&nt_blocked) {
                assert!((x - y).abs() < 2e-3 * y.abs().max(1.0), "nt ({m},{k},{n}): {x} vs {y}");
            }

            let mut tn_packed = vec![0.0f32; k * n];
            let mut tn_blocked = vec![0.0f32; k * n];
            gemm_tn_packed_with_threads(&a, &b_tn, &mut tn_packed, m, k, n, 1);
            gemm_tn_blocked_with_threads(&a, &b_tn, &mut tn_blocked, m, k, n, 1);
            for (x, y) in tn_packed.iter().zip(&tn_blocked) {
                assert!((x - y).abs() < 2e-3 * y.abs().max(1.0), "tn ({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_kernels_are_bit_identical_across_thread_counts() {
        // Spans two k panels and two strips so seams are exercised.
        let (m, k, n) = (MC + 5, KC + 37, NR + 9);
        let a = filled(m * k, 13);
        let b = filled(k * n, 17);
        let bt = filled(n * k, 19);
        let b_tn = filled(m * n, 23);
        for threads in [2usize, 3, 4, 8] {
            let mut c1 = vec![0.0f32; m * n];
            let mut cp = vec![0.0f32; m * n];
            gemm_packed_with_threads(&a, &b, &mut c1, m, k, n, 1);
            gemm_packed_with_threads(&a, &b, &mut cp, m, k, n, threads);
            assert_eq!(c1, cp, "packed gemm threads={threads}");

            let mut d1 = vec![0.0f32; m * n];
            let mut dp = vec![0.0f32; m * n];
            gemm_nt_packed_with_threads(&a, &bt, &mut d1, m, k, n, 1);
            gemm_nt_packed_with_threads(&a, &bt, &mut dp, m, k, n, threads);
            assert_eq!(d1, dp, "packed gemm_nt threads={threads}");

            let mut e1 = vec![0.0f32; k * n];
            let mut ep = vec![0.0f32; k * n];
            gemm_tn_packed_with_threads(&a, &b_tn, &mut e1, m, k, n, 1);
            gemm_tn_packed_with_threads(&a, &b_tn, &mut ep, m, k, n, threads);
            assert_eq!(e1, ep, "packed gemm_tn threads={threads}");
        }
    }

    #[test]
    fn packed_gemm_accumulates_into_c() {
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![10.0f32; m * n];
        gemm_packed_with_threads(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(c, vec![13.0; 4]);
    }

    #[test]
    fn dispatch_is_shape_only_and_consistent() {
        // Above the work threshold the dispatching entry point and the
        // forced packed tier must produce identical bits (same path).
        let (m, k, n) = (128, 128, 64); // 1,048,576 = PACKED_MIN_WORK
        assert!(uses_packed_path(m, k, n));
        assert!(!uses_packed_path(m, k, n - 1));
        let a = filled(m * k, 41);
        let b = filled(k * n, 43);
        let mut via_dispatch = vec![0.0f32; m * n];
        let mut via_packed = vec![0.0f32; m * n];
        gemm_with_threads(&a, &b, &mut via_dispatch, m, k, n, 2);
        gemm_packed_with_threads(&a, &b, &mut via_packed, m, k, n, 2);
        assert_eq!(via_dispatch, via_packed);
    }

    /// The scalar-forced packed path is the reference; without the `simd`
    /// feature AutoTiles *is* scalar, with it this asserts AVX bit-equality.
    #[test]
    fn packed_auto_tiles_bit_match_scalar_reference() {
        let (m, k, n) = (MR * 3 + 1, KC + 53, NR * 2 + 3);
        let a = filled(m * k, 61);
        let b = filled(k * n, 67);
        let mut auto_c = vec![0.0f32; m * n];
        let mut scalar_c = vec![0.0f32; m * n];
        gemm_packed_with_threads(&a, &b, &mut auto_c, m, k, n, 2);
        gemm_packed_scalar_with_threads(&a, &b, &mut scalar_c, m, k, n, 2);
        let auto_bits: Vec<u32> = auto_c.iter().map(|v| v.to_bits()).collect();
        let scalar_bits: Vec<u32> = scalar_c.iter().map(|v| v.to_bits()).collect();
        assert_eq!(auto_bits, scalar_bits);
    }

    /// The prepacked entry point reuses one resident panel across calls and
    /// must produce the same bits as the pack-per-call path — for a
    /// coalesced batch and, row for row, for single-row (`m = 1`) calls.
    #[test]
    fn prepacked_matches_pack_per_call_and_row_calls() {
        let (m, k, n) = (MR * 2 + 1, KC + 5, NR + 7);
        let a = filled(m * k, 71);
        let bt = filled(n * k, 73);
        let packed = pack::pack_b_t(&bt, n, k);

        let mut per_call = vec![0.0f32; m * n];
        gemm_nt_packed_with_threads(&a, &bt, &mut per_call, m, k, n, 2);
        for threads in [1usize, 2, 4] {
            let mut batched = vec![0.0f32; m * n];
            gemm_prepacked_with_threads(&a, &packed, &mut batched, m, threads);
            assert_eq!(batched, per_call, "batched threads={threads}");

            let mut rowwise = vec![0.0f32; m * n];
            for i in 0..m {
                gemm_prepacked_with_threads(
                    &a[i * k..(i + 1) * k],
                    &packed,
                    &mut rowwise[i * n..(i + 1) * n],
                    1,
                    threads,
                );
            }
            assert_eq!(rowwise, per_call, "rowwise threads={threads}");
        }
    }

    #[test]
    fn packed_empty_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm_packed_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_nt_packed_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_tn_packed_with_threads(&[], &[], &mut c, 4, 0, 0, 4);
        let mut c1 = vec![5.0f32; 6];
        gemm_packed_with_threads(&[], &[], &mut c1, 2, 0, 3, 4); // k = 0
        assert_eq!(c1, vec![5.0; 6]);
    }

    #[test]
    fn accumulate_semantics_preserved() {
        // Kernels add into c rather than overwrite.
        let (m, k, n) = (2, 3, 2);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![10.0f32; m * n];
        gemm_with_threads(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(c, vec![13.0; 4]);
    }

    #[test]
    fn dot_handles_remainders() {
        for len in 0..9 {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 + 1.0) * 0.5).collect();
            let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - want).abs() < 1e-4, "len={len}");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![0.0f32; 0];
        gemm_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_nt_with_threads(&[], &[], &mut c, 0, 4, 0, 4);
        gemm_tn_with_threads(&[], &[], &mut c, 4, 0, 0, 4);
    }
}
