//! `cem-par`: scoped-thread data parallelism *below* autograd.
//!
//! [`Tensor`](crate::Tensor) is `Rc<RefCell<…>>` and therefore neither
//! `Send` nor `Sync`, so parallelism cannot live at the op-graph level.
//! Instead, kernels first extract raw `&[f32]` / `&mut [f32]` slices (plain
//! slices are `Sync`/`Send`) and fan the *output rows* out over a scoped
//! thread pool ([`std::thread::scope`] — no external dependency, no
//! long-lived worker state). Each worker owns a disjoint, contiguous block
//! of output rows and runs exactly the serial per-row code, so:
//!
//! * no two threads ever write the same element (no atomics, no locks on
//!   the hot path), and
//! * every output element is produced by the *same* sequence of f32
//!   operations regardless of the thread count — results are
//!   **bit-identical** to the serial path, which preserves the bit-faithful
//!   checkpoint/resume guarantee of the resilience layer.
//!
//! Thread count resolution order: [`set_threads`]/[`ThreadsGuard`] override
//! → `CEM_THREADS` environment variable → [`std::thread::available_parallelism`].
//! A resolved count of `1` short-circuits into the exact serial code path
//! (the partition closure is invoked once, on the calling thread, over the
//! whole buffer).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `CEM_THREADS` parsed once per process (`0` = unset/invalid).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CEM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(0)
    })
}

/// The thread budget kernels may use for sufficiently large work.
pub fn max_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Set the process-wide thread budget (`0` clears the override, falling
/// back to `CEM_THREADS` / `available_parallelism`).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// RAII thread-budget override used by `TrainOptions::threads`: restores
/// the previous override on drop.
pub struct ThreadsGuard {
    previous: usize,
}

impl ThreadsGuard {
    pub fn new(threads: usize) -> Self {
        ThreadsGuard { previous: THREAD_OVERRIDE.swap(threads, Ordering::Relaxed) }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.previous, Ordering::Relaxed);
    }
}

/// Elementwise ops smaller than this stay serial: a thread spawn costs tens
/// of microseconds, which only amortises once a buffer spans many cache
/// lines' worth of work.
pub const PAR_ELEMWISE_THRESHOLD: usize = 32 * 1024;

/// GEMM work (`m·k·n` multiply-adds) below which the serial kernel wins.
pub const PAR_GEMM_THRESHOLD: usize = 1 << 21;

/// Thread budget for an elementwise/reduce op over `numel` elements.
pub fn auto_threads(numel: usize) -> usize {
    if numel < PAR_ELEMWISE_THRESHOLD {
        1
    } else {
        max_threads()
    }
}

/// Thread budget for a GEMM of `m·k·n` multiply-adds.
pub fn auto_threads_gemm(work: usize) -> usize {
    if work < PAR_GEMM_THRESHOLD {
        1
    } else {
        max_threads()
    }
}

/// Row-partition primitive: split `data` into contiguous blocks of whole
/// `chunk_len`-element chunks, one block per worker, and call
/// `f(first_chunk_index, block)` on each. `data.len()` must be a multiple
/// of `chunk_len`. With an effective thread count of 1 the closure runs
/// once on the calling thread over the entire buffer — the exact serial
/// code path.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    assert_eq!(data.len() % chunk_len, 0, "par_chunks_mut: data not a whole number of chunks");
    let chunks = data.len() / chunk_len;
    let threads = threads.min(chunks).max(1);
    if threads <= 1 {
        cem_obs::counter_add!("par.serial", 1);
        f(0, data);
        return;
    }
    let per_block = chunks.div_ceil(threads);
    cem_obs::counter_add!("par.scopes", 1);
    // Workers beyond the calling thread (the last block runs inline).
    cem_obs::counter_add!("par.threads_spawned", (chunks.div_ceil(per_block) - 1) as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [T] = data;
        let mut first_chunk = 0usize;
        while rest.len() > per_block * chunk_len {
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(per_block * chunk_len);
            rest = tail;
            let start = first_chunk;
            scope.spawn(move || f(start, block));
            first_chunk += per_block;
        }
        // The final block runs on the calling thread; scope joins the rest.
        f(first_chunk, rest);
    });
}

/// Parallel unary map `out[i] = f(src[i])`.
pub fn map_into(src: &[f32], out: &mut [f32], threads: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), out.len(), "map_into: length mismatch");
    par_chunks_mut(out, 1, threads, |start, block| {
        let end = start + block.len();
        for (dst, &x) in block.iter_mut().zip(&src[start..end]) {
            *dst = f(x);
        }
    });
}

/// Parallel binary map `out[i] = f(a[i], b[i])`.
pub fn zip_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    threads: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    assert_eq!(a.len(), b.len(), "zip_into: operand length mismatch");
    assert_eq!(a.len(), out.len(), "zip_into: output length mismatch");
    par_chunks_mut(out, 1, threads, |start, block| {
        let end = start + block.len();
        for ((dst, &x), &y) in block.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
            *dst = f(x, y);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_chunks_exactly_once() {
        for threads in [1, 2, 3, 4, 7] {
            let mut data = vec![0u32; 6 * 5];
            par_chunks_mut(&mut data, 5, threads, |first, block| {
                for (c, chunk) in block.chunks_exact_mut(5).enumerate() {
                    for v in chunk.iter_mut() {
                        *v += (first + c) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> =
                (0..6).flat_map(|c| std::iter::repeat_n(c as u32 + 1, 5)).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let mut data = vec![0.0f32; 3];
        par_chunks_mut(&mut data, 1, 16, |start, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (start + i) as f32;
            }
        });
        assert_eq!(data, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn maps_match_serial() {
        // Keep exp() finite: sin(inf) is NaN and NaN != NaN would mask the
        // bit-identity this test is about.
        let src: Vec<f32> = (0..1000).map(|i| i as f32 * 0.02 - 10.0).collect();
        let mut serial = vec![0.0f32; src.len()];
        let mut parallel = vec![0.0f32; src.len()];
        map_into(&src, &mut serial, 1, |x| x.exp().sin());
        map_into(&src, &mut parallel, 4, |x| x.exp().sin());
        assert_eq!(serial, parallel);

        let b: Vec<f32> = (0..1000).map(|i| (i % 17) as f32 + 0.5).collect();
        let mut zs = vec![0.0f32; src.len()];
        let mut zp = vec![0.0f32; src.len()];
        zip_into(&src, &b, &mut zs, 1, |x, y| x / y);
        zip_into(&src, &b, &mut zp, 3, |x, y| x / y);
        assert_eq!(zs, zp);
    }

    #[test]
    fn threads_guard_restores_previous_override() {
        // Serial (tests may run concurrently, but the override is only
        // observed through max_threads, which this test scopes tightly).
        let before = THREAD_OVERRIDE.load(Ordering::Relaxed);
        {
            let _g = ThreadsGuard::new(3);
            assert_eq!(max_threads(), 3);
            {
                let _inner = ThreadsGuard::new(5);
                assert_eq!(max_threads(), 5);
            }
            assert_eq!(max_threads(), 3);
        }
        assert_eq!(THREAD_OVERRIDE.load(Ordering::Relaxed), before);
    }

    #[test]
    fn auto_thread_policy_respects_thresholds() {
        let _g = ThreadsGuard::new(8);
        assert_eq!(auto_threads(10), 1);
        assert_eq!(auto_threads(PAR_ELEMWISE_THRESHOLD), 8);
        assert_eq!(auto_threads_gemm(10), 1);
        assert_eq!(auto_threads_gemm(PAR_GEMM_THRESHOLD), 8);
    }
}
