//! `cem-par`: scoped-thread data parallelism *below* autograd.
//!
//! [`Tensor`](crate::Tensor) is `Rc<RefCell<…>>` and therefore neither
//! `Send` nor `Sync`, so parallelism cannot live at the op-graph level.
//! Instead, kernels first extract raw `&[f32]` / `&mut [f32]` slices (plain
//! slices are `Sync`/`Send`) and fan the *output rows* out over a scoped
//! thread pool ([`std::thread::scope`] — no external dependency, no
//! long-lived worker state). Each worker owns a disjoint, contiguous block
//! of output rows and runs exactly the serial per-row code, so:
//!
//! * no two threads ever write the same element (no atomics, no locks on
//!   the hot path), and
//! * every output element is produced by the *same* sequence of f32
//!   operations regardless of the thread count — results are
//!   **bit-identical** to the serial path, which preserves the bit-faithful
//!   checkpoint/resume guarantee of the resilience layer.
//!
//! Partitioning comes in three flavours, all built on the same scoped
//! splitter:
//!
//! * [`par_chunks_mut`] — uniform contiguous blocks, one per worker.
//! * [`par_chunks_mut_aligned`] — uniform blocks whose chunk counts are
//!   rounded up to a multiple of an alignment (so the packed GEMM's 4-row
//!   micro-kernel never straddles a worker boundary mid-group).
//! * [`par_chunks_mut_weighted`] — contiguous blocks balanced by a
//!   per-chunk cost estimate instead of chunk count (so heterogeneous rows
//!   — e.g. proximity rows whose cost scales with the entity's
//!   neighbourhood size — stop serialising behind the most expensive
//!   block).
//!
//! The fused multi-output maps ([`map2_into`], [`zip3_into`]) drive the
//! fused forward+derivative elementwise ops: one parallel sweep fills the
//! op output *and* its derivative coefficient buffers, instead of one pass
//! per buffer.
//!
//! Thread count resolution order: [`set_threads`]/[`ThreadsGuard`] override
//! → `CEM_THREADS` environment variable → [`std::thread::available_parallelism`].
//! A resolved count of `1` short-circuits into the exact serial code path
//! (the partition closure is invoked once, on the calling thread, over the
//! whole buffer).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `CEM_THREADS` parsed once per process (`0` = unset/invalid).
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CEM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(0)
    })
}

/// Physical core count, resolved once (1 if unknown).
pub fn machine_threads() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// The thread budget kernels may use for sufficiently large work.
pub fn max_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    machine_threads()
}

/// Set the process-wide thread budget (`0` clears the override, falling
/// back to `CEM_THREADS` / `available_parallelism`).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// RAII thread-budget override used by `TrainOptions::threads`: restores
/// the previous override on drop.
pub struct ThreadsGuard {
    previous: usize,
}

impl ThreadsGuard {
    pub fn new(threads: usize) -> Self {
        ThreadsGuard { previous: THREAD_OVERRIDE.swap(threads, Ordering::Relaxed) }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.store(self.previous, Ordering::Relaxed);
    }
}

/// Elementwise ops smaller than this stay serial: a thread spawn costs tens
/// of microseconds, which only amortises once a buffer spans many cache
/// lines' worth of work.
pub const PAR_ELEMWISE_THRESHOLD: usize = 32 * 1024;

/// GEMM work (`m·k·n` multiply-adds) below which the serial kernel wins.
pub const PAR_GEMM_THRESHOLD: usize = 1 << 21;

/// Thread budget for an elementwise/reduce op over `numel` elements.
pub fn auto_threads(numel: usize) -> usize {
    if numel < PAR_ELEMWISE_THRESHOLD {
        1
    } else {
        max_threads()
    }
}

/// Thread budget for a GEMM of `m·k·n` multiply-adds.
pub fn auto_threads_gemm(work: usize) -> usize {
    if work < PAR_GEMM_THRESHOLD {
        1
    } else {
        max_threads()
    }
}

/// Core splitter shared by every partition flavour: split `data` into
/// contiguous blocks of whole chunks at the given boundaries (chunk
/// indices, strictly increasing, exclusive of 0 and the final chunk count)
/// and run `f(first_chunk_index, block)` on each block, all but the last on
/// scoped worker threads. With no boundaries the closure runs once on the
/// calling thread — the exact serial code path.
fn run_blocks<T, F>(data: &mut [T], chunk_len: usize, boundaries: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if boundaries.is_empty() {
        cem_obs::counter_add!("par.serial", 1);
        f(0, data);
        return;
    }
    cem_obs::counter_add!("par.scopes", 1);
    cem_obs::counter_add!("par.threads_spawned", boundaries.len() as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest: &mut [T] = data;
        let mut first_chunk = 0usize;
        for &cut in boundaries {
            let take = (cut - first_chunk) * chunk_len;
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(take);
            rest = tail;
            let start = first_chunk;
            scope.spawn(move || f(start, block));
            first_chunk = cut;
        }
        // The final block runs on the calling thread; scope joins the rest.
        f(first_chunk, rest);
    });
}

/// Uniform block boundaries for `chunks` chunks over `threads` workers,
/// with per-worker chunk counts rounded up to a multiple of `align`.
fn uniform_boundaries(chunks: usize, threads: usize, align: usize) -> Vec<usize> {
    let threads = threads.min(chunks).max(1);
    if threads <= 1 {
        return Vec::new();
    }
    let align = align.max(1);
    let per_block = chunks.div_ceil(threads).next_multiple_of(align);
    let mut cuts = Vec::new();
    let mut at = per_block;
    while at < chunks {
        cuts.push(at);
        at += per_block;
    }
    cuts
}

/// Row-partition primitive: split `data` into contiguous blocks of whole
/// `chunk_len`-element chunks, one block per worker, and call
/// `f(first_chunk_index, block)` on each. `data.len()` must be a multiple
/// of `chunk_len`. With an effective thread count of 1 the closure runs
/// once on the calling thread over the entire buffer — the exact serial
/// code path.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_aligned(data, chunk_len, 1, threads, f);
}

/// [`par_chunks_mut`] with per-worker chunk counts rounded up to a multiple
/// of `align`: every block except possibly the last holds `align·q` chunks.
/// The packed GEMM partitions output rows with `align = MR` so no worker's
/// block starts mid-way through a 4-row micro-kernel group and every worker
/// sweeps whole cache-resident row groups.
pub fn par_chunks_mut_aligned<T, F>(
    data: &mut [T],
    chunk_len: usize,
    align: usize,
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    assert_eq!(data.len() % chunk_len, 0, "par_chunks_mut: data not a whole number of chunks");
    let chunks = data.len() / chunk_len;
    run_blocks(data, chunk_len, &uniform_boundaries(chunks, threads, align), f);
}

/// Weighted row partition: split `data` into one contiguous block per
/// worker, with boundaries chosen so every block carries roughly
/// `total_weight / threads` of the per-chunk cost estimate in `weights`
/// (len = chunk count). Heterogeneous rows (proximity rows scale with the
/// entity's neighbourhood size) would otherwise leave the worker holding
/// the expensive block as the straggler every wave.
///
/// Boundaries depend only on `weights` and `threads` — never on timing —
/// and each chunk is still processed by the same serial per-chunk code, so
/// results remain bit-identical at every thread count.
pub fn par_chunks_mut_weighted<T, F>(
    data: &mut [T],
    chunk_len: usize,
    weights: &[u64],
    threads: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut_weighted: chunk_len must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "par_chunks_mut_weighted: data not a whole number of chunks"
    );
    let chunks = data.len() / chunk_len;
    assert_eq!(weights.len(), chunks, "par_chunks_mut_weighted: one weight per chunk required");
    let threads = threads.min(chunks).max(1);
    let total: u64 = weights.iter().sum();
    if threads <= 1 || total == 0 {
        run_blocks(data, chunk_len, &uniform_boundaries(chunks, threads, 1), f);
        return;
    }
    // Greedy prefix cut: close a block once its weight reaches the ideal
    // share of the *remaining* weight over the remaining workers, which
    // keeps late blocks from starving when early weights are lumpy.
    let mut cuts = Vec::with_capacity(threads - 1);
    let mut remaining = total;
    let mut block_weight = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        block_weight += w;
        remaining -= w;
        let blocks_left = threads - cuts.len();
        let target = remaining.div_ceil(blocks_left.saturating_sub(1).max(1) as u64);
        let chunks_left = chunks - (i + 1);
        if cuts.len() + 1 < threads
            && chunks_left > 0
            && (block_weight >= target.max(1) || chunks_left < threads - cuts.len())
        {
            cuts.push(i + 1);
            block_weight = 0;
        }
    }
    run_blocks(data, chunk_len, &cuts, f);
}

/// Parallel unary map `out[i] = f(src[i])`.
pub fn map_into(src: &[f32], out: &mut [f32], threads: usize, f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), out.len(), "map_into: length mismatch");
    par_chunks_mut(out, 1, threads, |start, block| {
        let end = start + block.len();
        for (dst, &x) in block.iter_mut().zip(&src[start..end]) {
            *dst = f(x);
        }
    });
}

/// Parallel binary map `out[i] = f(a[i], b[i])`.
pub fn zip_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    threads: usize,
    f: impl Fn(f32, f32) -> f32 + Sync,
) {
    assert_eq!(a.len(), b.len(), "zip_into: operand length mismatch");
    assert_eq!(a.len(), out.len(), "zip_into: output length mismatch");
    par_chunks_mut(out, 1, threads, |start, block| {
        let end = start + block.len();
        for ((dst, &x), &y) in block.iter_mut().zip(&a[start..end]).zip(&b[start..end]) {
            *dst = f(x, y);
        }
    });
}

/// Fused unary map with two outputs: `(out[i], out2[i]) = f(src[i])` in a
/// single parallel sweep. The fused elementwise ops use this to fill the
/// forward value and its derivative coefficient without a second pass over
/// the input.
pub fn map2_into(
    src: &[f32],
    out: &mut [f32],
    out2: &mut [f32],
    threads: usize,
    f: impl Fn(f32) -> (f32, f32) + Sync,
) {
    assert_eq!(src.len(), out.len(), "map2_into: output length mismatch");
    assert_eq!(src.len(), out2.len(), "map2_into: second output length mismatch");
    let threads = threads.min(src.len()).max(1);
    let boundaries = uniform_boundaries(src.len(), threads, 1);
    scope_zip2(out, out2, &boundaries, |start, o1, o2| {
        for ((dst, dst2), &x) in o1.iter_mut().zip(o2.iter_mut()).zip(&src[start..]) {
            let (a, b) = f(x);
            *dst = a;
            *dst2 = b;
        }
    });
}

/// Fused binary map with three outputs:
/// `(out[i], da[i], db[i]) = f(a[i], b[i])` in a single parallel sweep —
/// the forward value plus both partial-derivative coefficients, one pass.
pub fn zip3_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    da: &mut [f32],
    db: &mut [f32],
    threads: usize,
    f: impl Fn(f32, f32) -> (f32, f32, f32) + Sync,
) {
    assert_eq!(a.len(), b.len(), "zip3_into: operand length mismatch");
    assert_eq!(a.len(), out.len(), "zip3_into: output length mismatch");
    assert_eq!(a.len(), da.len(), "zip3_into: da length mismatch");
    assert_eq!(a.len(), db.len(), "zip3_into: db length mismatch");
    let threads = threads.min(a.len()).max(1);
    let boundaries = uniform_boundaries(a.len(), threads, 1);
    scope_zip3(out, da, db, &boundaries, |start, o, d1, d2| {
        for (i, ((dst, dda), ddb)) in o.iter_mut().zip(d1.iter_mut()).zip(d2.iter_mut()).enumerate()
        {
            let (v, ga, gb) = f(a[start + i], b[start + i]);
            *dst = v;
            *dda = ga;
            *ddb = gb;
        }
    });
}

/// Scoped splitter over two equally-long output slices cut at the same
/// boundaries (element indices).
fn scope_zip2<F>(x: &mut [f32], y: &mut [f32], boundaries: &[usize], f: F)
where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    if boundaries.is_empty() {
        cem_obs::counter_add!("par.serial", 1);
        f(0, x, y);
        return;
    }
    cem_obs::counter_add!("par.scopes", 1);
    cem_obs::counter_add!("par.threads_spawned", boundaries.len() as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rx, mut ry): (&mut [f32], &mut [f32]) = (x, y);
        let mut first = 0usize;
        for &cut in boundaries {
            let take = cut - first;
            let (bx, tx) = std::mem::take(&mut rx).split_at_mut(take);
            let (by, ty) = std::mem::take(&mut ry).split_at_mut(take);
            rx = tx;
            ry = ty;
            let start = first;
            scope.spawn(move || f(start, bx, by));
            first = cut;
        }
        f(first, rx, ry);
    });
}

/// Scoped splitter over three equally-long output slices cut at the same
/// boundaries (element indices).
fn scope_zip3<F>(x: &mut [f32], y: &mut [f32], z: &mut [f32], boundaries: &[usize], f: F)
where
    F: Fn(usize, &mut [f32], &mut [f32], &mut [f32]) + Sync,
{
    if boundaries.is_empty() {
        cem_obs::counter_add!("par.serial", 1);
        f(0, x, y, z);
        return;
    }
    cem_obs::counter_add!("par.scopes", 1);
    cem_obs::counter_add!("par.threads_spawned", boundaries.len() as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let (mut rx, mut ry, mut rz): (&mut [f32], &mut [f32], &mut [f32]) = (x, y, z);
        let mut first = 0usize;
        for &cut in boundaries {
            let take = cut - first;
            let (bx, tx) = std::mem::take(&mut rx).split_at_mut(take);
            let (by, ty) = std::mem::take(&mut ry).split_at_mut(take);
            let (bz, tz) = std::mem::take(&mut rz).split_at_mut(take);
            rx = tx;
            ry = ty;
            rz = tz;
            let start = first;
            scope.spawn(move || f(start, bx, by, bz));
            first = cut;
        }
        f(first, rx, ry, rz);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_chunks_exactly_once() {
        for threads in [1, 2, 3, 4, 7] {
            let mut data = vec![0u32; 6 * 5];
            par_chunks_mut(&mut data, 5, threads, |first, block| {
                for (c, chunk) in block.chunks_exact_mut(5).enumerate() {
                    for v in chunk.iter_mut() {
                        *v += (first + c) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> =
                (0..6).flat_map(|c| std::iter::repeat_n(c as u32 + 1, 5)).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let mut data = vec![0.0f32; 3];
        par_chunks_mut(&mut data, 1, 16, |start, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (start + i) as f32;
            }
        });
        assert_eq!(data, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn aligned_partitions_start_on_multiples() {
        for threads in [2usize, 3, 4] {
            for chunks in [5usize, 8, 9, 13, 16] {
                let mut data = vec![0usize; chunks];
                let starts = std::sync::Mutex::new(Vec::new());
                par_chunks_mut_aligned(&mut data, 1, 4, threads, |first, block| {
                    starts.lock().unwrap().push((first, block.len()));
                });
                let mut starts = starts.into_inner().unwrap();
                starts.sort_unstable();
                let covered: usize = starts.iter().map(|&(_, len)| len).sum();
                assert_eq!(covered, chunks, "threads={threads} chunks={chunks}");
                for &(first, _) in &starts {
                    assert_eq!(first % 4, 0, "block start {first} not 4-aligned");
                }
            }
        }
    }

    #[test]
    fn weighted_partition_covers_and_balances() {
        // One expensive chunk at the front: the uniform split would give
        // worker 0 chunks {0,1} (weight 101) and worker 1 chunks {2,3}
        // (weight 2); the weighted split isolates the heavy chunk.
        let weights = [100u64, 1, 1, 1];
        let mut data = vec![0u8; 4];
        let blocks = std::sync::Mutex::new(Vec::new());
        par_chunks_mut_weighted(&mut data, 1, &weights, 2, |first, block| {
            blocks.lock().unwrap().push((first, block.len()));
        });
        let mut blocks = blocks.into_inner().unwrap();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn weighted_partition_matches_serial_results() {
        let weights: Vec<u64> = (0..40).map(|i| (i % 7) + 1).collect();
        let run = |threads: usize| {
            let mut data = vec![0.0f32; 40 * 3];
            par_chunks_mut_weighted(&mut data, 3, &weights, threads, |first, block| {
                for (c, chunk) in block.chunks_exact_mut(3).enumerate() {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = ((first + c) * 3 + j) as f32 * 0.5;
                    }
                }
            });
            data
        };
        let serial = run(1);
        for threads in [2usize, 3, 5, 8] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn weighted_partition_zero_and_degenerate_weights() {
        let mut data = vec![0u8; 5];
        par_chunks_mut_weighted(&mut data, 1, &[0, 0, 0, 0, 0], 3, |first, block| {
            for (i, v) in block.iter_mut().enumerate() {
                *v = (first + i) as u8 + 1;
            }
        });
        assert_eq!(data, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn maps_match_serial() {
        // Keep exp() finite: sin(inf) is NaN and NaN != NaN would mask the
        // bit-identity this test is about.
        let src: Vec<f32> = (0..1000).map(|i| i as f32 * 0.02 - 10.0).collect();
        let mut serial = vec![0.0f32; src.len()];
        let mut parallel = vec![0.0f32; src.len()];
        map_into(&src, &mut serial, 1, |x| x.exp().sin());
        map_into(&src, &mut parallel, 4, |x| x.exp().sin());
        assert_eq!(serial, parallel);

        let b: Vec<f32> = (0..1000).map(|i| (i % 17) as f32 + 0.5).collect();
        let mut zs = vec![0.0f32; src.len()];
        let mut zp = vec![0.0f32; src.len()];
        zip_into(&src, &b, &mut zs, 1, |x, y| x / y);
        zip_into(&src, &b, &mut zp, 3, |x, y| x / y);
        assert_eq!(zs, zp);
    }

    #[test]
    fn fused_maps_match_unfused_and_are_thread_invariant() {
        let src: Vec<f32> = (0..777).map(|i| i as f32 * 0.03 - 9.0).collect();
        let b: Vec<f32> = (0..777).map(|i| (i % 13) as f32 + 0.25).collect();

        for threads in [1usize, 2, 5] {
            let mut out = vec![0.0f32; src.len()];
            let mut dx = vec![0.0f32; src.len()];
            map2_into(&src, &mut out, &mut dx, threads, |x| (x.exp(), x.exp()));
            let mut want = vec![0.0f32; src.len()];
            map_into(&src, &mut want, 1, |x| x.exp());
            assert_eq!(out, want, "map2 forward threads={threads}");
            assert_eq!(dx, want, "map2 derivative threads={threads}");

            let mut o = vec![0.0f32; src.len()];
            let mut da = vec![0.0f32; src.len()];
            let mut db = vec![0.0f32; src.len()];
            zip3_into(&src, &b, &mut o, &mut da, &mut db, threads, |x, y| {
                (x / y, 1.0 / y, -(x / y) / y)
            });
            let mut wo = vec![0.0f32; src.len()];
            zip_into(&src, &b, &mut wo, 1, |x, y| x / y);
            assert_eq!(o, wo, "zip3 forward threads={threads}");
            for i in 0..10 {
                assert_eq!(da[i], 1.0 / b[i]);
                assert_eq!(db[i], -(src[i] / b[i]) / b[i]);
            }
        }
    }

    #[test]
    fn threads_guard_restores_previous_override() {
        // Serial (tests may run concurrently, but the override is only
        // observed through max_threads, which this test scopes tightly).
        let before = THREAD_OVERRIDE.load(Ordering::Relaxed);
        {
            let _g = ThreadsGuard::new(3);
            assert_eq!(max_threads(), 3);
            {
                let _inner = ThreadsGuard::new(5);
                assert_eq!(max_threads(), 5);
            }
            assert_eq!(max_threads(), 3);
        }
        assert_eq!(THREAD_OVERRIDE.load(Ordering::Relaxed), before);
    }

    #[test]
    fn auto_thread_policy_respects_thresholds() {
        let _g = ThreadsGuard::new(8);
        assert_eq!(auto_threads(10), 1);
        assert_eq!(auto_threads(PAR_ELEMWISE_THRESHOLD), 8);
        assert_eq!(auto_threads_gemm(10), 1);
        assert_eq!(auto_threads_gemm(PAR_GEMM_THRESHOLD), 8);
    }
}
