//! Checkpoint (de)serialisation for named tensor collections.
//!
//! Format (CEMT v2, little-endian):
//!
//! ```text
//! magic "CEMT" | u32 version=2 | u32 entry_count | u32 meta_count
//! per meta:  u32 name_len | name bytes | u64 value
//! per entry: u32 name_len | name bytes | u32 rank | u32 dims.. | f32 data..
//!            | u32 entry_crc   (CRC-32 of this entry's preceding bytes)
//! footer:    u32 file_crc      (CRC-32 of every preceding byte)
//!            | end magic "CEMZ"
//! ```
//!
//! v1 (no meta section, no CRCs, no footer) stays readable. Hand-rolled
//! (rather than serde) so checkpoints stay compact and the format is
//! trivially auditable. Every read path returns a typed
//! [`CheckpointError`] — corrupted or truncated files are never a panic —
//! and [`StateDict::save`] writes through a temp file + fsync + atomic
//! rename so a crash mid-save can never destroy an existing checkpoint.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::crc::crc32;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"CEMT";
const END_MAGIC: &[u8; 4] = b"CEMZ";
/// The legacy container version (pre-integrity-checking).
pub const FORMAT_V1: u32 = 1;
/// The current container version (per-entry CRC32 + whole-file footer).
pub const FORMAT_V2: u32 = 2;

/// Typed failure modes of checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure (open, read, write, rename, fsync).
    Io(io::Error),
    /// The file does not start with the `CEMT` magic.
    BadMagic([u8; 4]),
    /// The container version is not one this build can read.
    UnsupportedVersion(u32),
    /// The file ended before the structure it claims to contain.
    Truncated { context: &'static str, offset: usize },
    /// An integrity check failed (CRC mismatch, missing footer, bad UTF-8).
    Corrupted { context: String },
    /// A stored tensor does not fit the live parameter it targets.
    ShapeMismatch { name: String, expected: Vec<usize>, found: Vec<usize> },
    /// Structurally invalid content (duplicate names, absurd sizes).
    InvalidEntry { context: String },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic(found) => {
                write!(f, "bad checkpoint magic {found:?} (expected {MAGIC:?})")
            }
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads v1 and v2)")
            }
            CheckpointError::Truncated { context, offset } => {
                write!(f, "truncated checkpoint: {context} at byte {offset}")
            }
            CheckpointError::Corrupted { context } => {
                write!(f, "corrupted checkpoint: {context}")
            }
            CheckpointError::ShapeMismatch { name, expected, found } => {
                write!(f, "checkpoint shape mismatch for {name:?}: stored {found:?}, live {expected:?}")
            }
            CheckpointError::InvalidEntry { context } => {
                write!(f, "invalid checkpoint entry: {context}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// An ordered map of parameter name → tensor plus a small `u64` metadata
/// map (epoch counters, seeds, fingerprints), used for save/load.
#[derive(Debug, Default)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
    meta: BTreeMap<String, u64>,
}

impl StateDict {
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Insert a tensor; panics on duplicate names to surface wiring bugs.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        assert!(
            self.entries.insert(name.clone(), tensor).is_none(),
            "duplicate parameter name {name:?}"
        );
    }

    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Iterate over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tensor)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Set a `u64` metadata value (overwrites).
    pub fn insert_meta(&mut self, name: impl Into<String>, value: u64) {
        self.meta.insert(name.into(), value);
    }

    /// Look up a `u64` metadata value.
    pub fn meta(&self, name: &str) -> Option<u64> {
        self.meta.get(name).copied()
    }

    /// Iterate over `(name, value)` metadata pairs in name order.
    pub fn meta_iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.meta.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Serialise to the current (v2) container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_V2.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        for (name, value) in &self.meta {
            let bytes = name.as_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
            out.extend_from_slice(&value.to_le_bytes());
        }
        for (name, tensor) in &self.entries {
            let start = out.len();
            write_entry_body(&mut out, name, tensor);
            let entry_crc = crc32(&out[start..]);
            out.extend_from_slice(&entry_crc.to_le_bytes());
        }
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out.extend_from_slice(END_MAGIC);
        out
    }

    /// Serialise to the legacy v1 container (no integrity checks). Kept so
    /// back-compat reading stays testable and old tooling can be fed.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_V1.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, tensor) in &self.entries {
            write_entry_body(&mut out, name, tensor);
        }
        out
    }

    /// Serialise (v2) to any writer.
    pub fn write_to(&self, mut w: impl Write) -> Result<(), CheckpointError> {
        w.write_all(&self.to_bytes())?;
        Ok(())
    }

    /// Deserialise from any reader (v1 or v2 accepted).
    pub fn read_from(mut r: impl Read) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        StateDict::from_bytes(&bytes)
    }

    /// Deserialise from an in-memory buffer (v1 or v2 accepted).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(4, "file magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic([magic[0], magic[1], magic[2], magic[3]]));
        }
        let version = cur.u32("container version")?;
        match version {
            FORMAT_V1 => parse_v1(cur),
            FORMAT_V2 => parse_v2(cur),
            other => Err(CheckpointError::UnsupportedVersion(other)),
        }
    }

    /// Save to a file path: write to a sibling temp file, fsync it, then
    /// atomically rename into place. A crash mid-save leaves any previous
    /// file at `path` untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let tmp = temp_sibling(path);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&self.to_bytes())?;
        file.sync_all()?;
        drop(file);
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load from a file path.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let file = std::fs::File::open(path)?;
        StateDict::read_from(io::BufReader::new(file))
    }

    /// Copy stored values into live parameter tensors by name. Returns the
    /// list of names that were present in the dict but not in `targets`,
    /// or a [`CheckpointError::ShapeMismatch`] if a stored tensor does not
    /// fit its live counterpart.
    pub fn restore_into(
        &self,
        targets: &[(String, Tensor)],
    ) -> Result<Vec<String>, CheckpointError> {
        let mut used = std::collections::HashSet::new();
        for (name, param) in targets {
            if let Some(saved) = self.entries.get(name) {
                if saved.numel() != param.numel() {
                    return Err(CheckpointError::ShapeMismatch {
                        name: name.clone(),
                        expected: param.dims().to_vec(),
                        found: saved.dims().to_vec(),
                    });
                }
                param.copy_from_slice(&saved.to_vec());
                used.insert(name.clone());
            }
        }
        Ok(self.entries.keys().filter(|k| !used.contains(*k)).cloned().collect())
    }
}

/// Temp-file path next to `path` (same filesystem, so rename is atomic).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn write_entry_body(out: &mut Vec<u8>, name: &str, tensor: &Tensor) {
    let bytes = name.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    let dims = tensor.dims();
    out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for v in tensor.to_vec() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked reader over an in-memory buffer. Refusing to read past
/// the end (instead of trusting stored lengths) is what keeps corrupted
/// length fields from turning into allocation bombs or panics.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Truncated { context, offset: self.pos });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f32(&mut self, context: &'static str) -> Result<f32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self, context: &'static str) -> Result<String, CheckpointError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CheckpointError::Corrupted {
            context: format!("{context}: non-UTF-8 name ({e})"),
        })
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// Parse one `name | rank | dims | data` entry body (shared by v1 and v2).
fn parse_entry(cur: &mut Cursor<'_>, dict: &mut StateDict) -> Result<(), CheckpointError> {
    let name = cur.string("entry name")?;
    let rank = cur.u32("entry rank")? as usize;
    if rank * 4 > cur.remaining() {
        return Err(CheckpointError::Truncated { context: "entry dims", offset: cur.pos });
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(cur.u32("entry dim")? as usize);
    }
    let numel = dims.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)).ok_or_else(|| {
        CheckpointError::InvalidEntry { context: format!("entry {name:?}: dims {dims:?} overflow") }
    })?;
    if numel.checked_mul(4).map(|b| b > cur.remaining()).unwrap_or(true) {
        return Err(CheckpointError::Truncated { context: "entry data", offset: cur.pos });
    }
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(cur.f32("entry data")?);
    }
    if dict.entries.contains_key(&name) {
        return Err(CheckpointError::InvalidEntry {
            context: format!("duplicate entry name {name:?}"),
        });
    }
    dict.entries.insert(name, Tensor::from_vec(data, &dims));
    Ok(())
}

fn parse_v1(mut cur: Cursor<'_>) -> Result<StateDict, CheckpointError> {
    let count = cur.u32("entry count")? as usize;
    let mut dict = StateDict::new();
    for _ in 0..count {
        parse_entry(&mut cur, &mut dict)?;
    }
    Ok(dict)
}

fn parse_v2(mut cur: Cursor<'_>) -> Result<StateDict, CheckpointError> {
    // Validate the footer first: end magic, then the whole-file CRC. This
    // catches truncation and any byte-level damage before the entry walk.
    let total = cur.bytes.len();
    if total < cur.pos + 8 {
        return Err(CheckpointError::Truncated { context: "v2 footer", offset: total });
    }
    if &cur.bytes[total - 4..] != END_MAGIC {
        return Err(CheckpointError::Truncated { context: "v2 end magic missing", offset: total });
    }
    let stored_file_crc = u32::from_le_bytes(cur.bytes[total - 8..total - 4].try_into().unwrap());
    let computed_file_crc = crc32(&cur.bytes[..total - 8]);
    if stored_file_crc != computed_file_crc {
        return Err(CheckpointError::Corrupted {
            context: format!(
                "file CRC mismatch: stored {stored_file_crc:#010x}, computed {computed_file_crc:#010x}"
            ),
        });
    }

    let entry_count = cur.u32("entry count")? as usize;
    let meta_count = cur.u32("meta count")? as usize;
    let mut dict = StateDict::new();
    for _ in 0..meta_count {
        let name = cur.string("meta name")?;
        let value = cur.u64("meta value")?;
        dict.meta.insert(name, value);
    }
    for _ in 0..entry_count {
        let start = cur.pos;
        parse_entry(&mut cur, &mut dict)?;
        let stored = cur.u32("entry crc")?;
        let computed = crc32(&cur.bytes[start..cur.pos - 4]);
        if stored != computed {
            return Err(CheckpointError::Corrupted {
                context: format!(
                    "entry CRC mismatch at byte {start}: stored {stored:#010x}, computed {computed:#010x}"
                ),
            });
        }
    }
    if cur.pos != total - 8 {
        return Err(CheckpointError::Corrupted {
            context: format!("{} unparsed bytes before footer", total - 8 - cur.pos),
        });
    }
    Ok(dict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateDict {
        let mut dict = StateDict::new();
        dict.insert("layer.weight", Tensor::from_vec(vec![1.5, -2.0, 0.25, 8.0], &[2, 2]));
        dict.insert("layer.bias", Tensor::from_vec(vec![0.1, 0.2], &[2]));
        dict.insert_meta("epoch", 7);
        dict.insert_meta("seed", u64::MAX - 3);
        dict
    }

    #[test]
    fn roundtrip_through_memory() {
        let dict = sample();
        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        let restored = StateDict::read_from(buf.as_slice()).unwrap();

        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get("layer.weight").unwrap().to_vec(), vec![1.5, -2.0, 0.25, 8.0]);
        assert_eq!(restored.get("layer.weight").unwrap().dims(), &[2, 2]);
        assert_eq!(restored.get("layer.bias").unwrap().to_vec(), vec![0.1, 0.2]);
        assert_eq!(restored.meta("epoch"), Some(7));
        assert_eq!(restored.meta("seed"), Some(u64::MAX - 3));
    }

    #[test]
    fn v1_files_stay_readable() {
        let dict = sample();
        let v1 = dict.to_bytes_v1();
        let restored = StateDict::from_bytes(&v1).unwrap();
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get("layer.weight").unwrap().to_vec(), vec![1.5, -2.0, 0.25, 8.0]);
        // v1 has no metadata section.
        assert_eq!(restored.meta("epoch"), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = StateDict::from_bytes(b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00").unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic(_)), "{err}");
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 9;
        let err = StateDict::from_bytes(&bytes).unwrap_err();
        // The version byte is covered by the file CRC, so either error is a
        // correct rejection; a version-9 file without a CRC must report the
        // version.
        assert!(
            matches!(
                err,
                CheckpointError::UnsupportedVersion(9) | CheckpointError::Corrupted { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            let err = StateDict::from_bytes(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::BadMagic(_)
                        | CheckpointError::Corrupted { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_detected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xFF;
            assert!(StateDict::from_bytes(&corrupted).is_err(), "flip at byte {i} not caught");
        }
    }

    #[test]
    fn restore_into_copies_and_reports_unused() {
        let mut dict = StateDict::new();
        dict.insert("a", Tensor::from_vec(vec![9.0], &[1]));
        dict.insert("orphan", Tensor::from_vec(vec![1.0], &[1]));

        let live = Tensor::zeros(&[1]);
        let unused = dict.restore_into(&[("a".to_string(), live.clone())]).unwrap();
        assert_eq!(live.item(), 9.0);
        assert_eq!(unused, vec!["orphan".to_string()]);
    }

    #[test]
    fn restore_into_rejects_shape_mismatch() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(&[3]));
        let live = Tensor::zeros(&[2]);
        let err = dict.restore_into(&[("w".to_string(), live)]).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(&[1]));
        dict.insert("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("cem_tensor_io_test_v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.cemt");
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::from_vec(vec![3.25; 6], &[3, 2]));
        dict.save(&path).unwrap();
        // No temp file left behind.
        assert!(!temp_sibling(&path).exists());
        let back = StateDict::load(&path).unwrap();
        assert_eq!(back.get("w").unwrap().to_vec(), vec![3.25; 6]);

        // Overwriting goes through the same atomic path.
        let mut dict2 = StateDict::new();
        dict2.insert("w", Tensor::from_vec(vec![-1.0; 6], &[3, 2]));
        dict2.save(&path).unwrap();
        let back2 = StateDict::load(&path).unwrap();
        assert_eq!(back2.get("w").unwrap().to_vec(), vec![-1.0; 6]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_payloads_roundtrip_bit_exact() {
        let mut dict = StateDict::new();
        let weird = f32::from_bits(0x7FC0_1234); // NaN with payload
        dict.insert("w", Tensor::from_vec(vec![weird, f32::INFINITY, -0.0], &[3]));
        let back = StateDict::from_bytes(&dict.to_bytes()).unwrap();
        let values = back.get("w").unwrap().to_vec();
        assert_eq!(values[0].to_bits(), 0x7FC0_1234);
        assert_eq!(values[1], f32::INFINITY);
        assert_eq!(values[2].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn corrupt_length_fields_do_not_allocate_bombs() {
        let mut bytes = sample().to_bytes();
        // Blow up the meta count field; must fail fast with a typed error.
        bytes[12] = 0xFF;
        bytes[13] = 0xFF;
        bytes[14] = 0xFF;
        bytes[15] = 0x7F;
        let err = StateDict::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupted { .. } | CheckpointError::Truncated { .. }),
            "{err}"
        );
    }
}
