//! Checkpoint (de)serialisation for named tensor collections.
//!
//! Format: a simple little-endian binary container —
//! `magic "CEMT" | u32 version | u32 entry_count` then per entry
//! `u32 name_len | name bytes | u32 rank | u32 dims.. | f32 data..`.
//! Hand-rolled (rather than serde) so checkpoints stay compact and the
//! format is trivially auditable.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"CEMT";
const VERSION: u32 = 1;

/// An ordered map of parameter name → tensor, used for save/load.
#[derive(Debug, Default)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    pub fn new() -> Self {
        StateDict::default()
    }

    /// Insert a tensor; panics on duplicate names to surface wiring bugs.
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        assert!(
            self.entries.insert(name.clone(), tensor).is_none(),
            "duplicate parameter name {name:?}"
        );
    }

    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Serialise to any writer.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, tensor) in &self.entries {
            let bytes = name.as_bytes();
            w.write_all(&(bytes.len() as u32).to_le_bytes())?;
            w.write_all(bytes)?;
            let dims = tensor.dims();
            w.write_all(&(dims.len() as u32).to_le_bytes())?;
            for &d in dims {
                w.write_all(&(d as u32).to_le_bytes())?;
            }
            for v in tensor.to_vec() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserialise from any reader.
    pub fn read_from(mut r: impl Read) -> io::Result<Self> {
        fn read_u32(r: &mut impl Read) -> io::Result<u32> {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            Ok(u32::from_le_bytes(buf))
        }
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad checkpoint magic"));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {version}"),
            ));
        }
        let count = read_u32(&mut r)? as usize;
        let mut dict = StateDict::new();
        for _ in 0..count {
            let name_len = read_u32(&mut r)? as usize;
            let mut name_bytes = vec![0u8; name_len];
            r.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let rank = read_u32(&mut r)? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(read_u32(&mut r)? as usize);
            }
            let numel: usize = dims.iter().product();
            let mut data = vec![0.0f32; numel];
            for v in data.iter_mut() {
                let mut buf = [0u8; 4];
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            dict.insert(name, Tensor::from_vec(data, &dims));
        }
        Ok(dict)
    }

    /// Save to a file path.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Load from a file path.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        StateDict::read_from(io::BufReader::new(file))
    }

    /// Copy stored values into live parameter tensors by name. Returns the
    /// list of names that were present in the dict but not in `targets`.
    pub fn restore_into(&self, targets: &[(String, Tensor)]) -> Vec<String> {
        let mut used = std::collections::HashSet::new();
        for (name, param) in targets {
            if let Some(saved) = self.entries.get(name) {
                assert_eq!(
                    saved.numel(),
                    param.numel(),
                    "checkpoint shape mismatch for {name}: {} vs {}",
                    saved.shape(),
                    param.shape()
                );
                param.copy_from_slice(&saved.to_vec());
                used.insert(name.clone());
            }
        }
        self.entries.keys().filter(|k| !used.contains(*k)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_memory() {
        let mut dict = StateDict::new();
        dict.insert("layer.weight", Tensor::from_vec(vec![1.5, -2.0, 0.25, 8.0], &[2, 2]));
        dict.insert("layer.bias", Tensor::from_vec(vec![0.1, 0.2], &[2]));

        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        let restored = StateDict::read_from(buf.as_slice()).unwrap();

        assert_eq!(restored.len(), 2);
        assert_eq!(restored.get("layer.weight").unwrap().to_vec(), vec![1.5, -2.0, 0.25, 8.0]);
        assert_eq!(restored.get("layer.weight").unwrap().dims(), &[2, 2]);
        assert_eq!(restored.get("layer.bias").unwrap().to_vec(), vec![0.1, 0.2]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = StateDict::read_from(&b"XXXX\x01\x00\x00\x00\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn restore_into_copies_and_reports_unused() {
        let mut dict = StateDict::new();
        dict.insert("a", Tensor::from_vec(vec![9.0], &[1]));
        dict.insert("orphan", Tensor::from_vec(vec![1.0], &[1]));

        let live = Tensor::zeros(&[1]);
        let unused = dict.restore_into(&[("a".to_string(), live.clone())]);
        assert_eq!(live.item(), 9.0);
        assert_eq!(unused, vec!["orphan".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(&[1]));
        dict.insert("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cem_tensor_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.cemt");
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::from_vec(vec![3.25; 6], &[3, 2]));
        dict.save(&path).unwrap();
        let back = StateDict::load(&path).unwrap();
        assert_eq!(back.get("w").unwrap().to_vec(), vec![3.25; 6]);
        std::fs::remove_file(&path).ok();
    }
}
