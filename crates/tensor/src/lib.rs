//! # cem-tensor
//!
//! A small, dependency-light dense tensor library with reverse-mode automatic
//! differentiation, written for the CrossEM reproduction. It plays the role
//! PyTorch plays in the paper: every model in the workspace (the CLIP-style
//! dual encoder, the soft-prompt generator, every baseline) expresses its
//! forward pass in these ops and trains through [`Tensor::backward`].
//!
//! Design notes:
//!
//! * Tensors are immutable-by-default, reference-counted views over a flat
//!   `Vec<f32>` buffer plus a [`Shape`]. Cloning a [`Tensor`] is cheap (an
//!   `Rc` bump) and shares storage.
//! * Autograd is a dynamic graph: each op that participates in
//!   differentiation records a grad closure and its parent tensors. Calling
//!   [`Tensor::backward`] topologically sorts the reachable graph and
//!   accumulates gradients into each leaf created with `requires_grad`.
//! * All buffer allocations are tracked by the global [`memory`] counters.
//!   The "GPU memory" columns of the paper's Table III / Figure 8 are
//!   reproduced as *peak live tensor bytes* during a training epoch — see
//!   `DESIGN.md` for the substitution argument.
//! * Randomness always flows through caller-provided [`rand::Rng`] values so
//!   every experiment in the workspace is reproducible from a seed.
//! * Parallelism lives *below* autograd: the GEMM and large elementwise
//!   kernels partition raw output slices over a scoped thread pool
//!   ([`par`], thread count from `CEM_THREADS`), and each worker owns a
//!   disjoint row block — results are bit-identical at every thread count.
//!
//! ```
//! use cem_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
//! let b = Tensor::from_vec(vec![0.5, 0.5, 0.5, 0.5], &[2, 2]);
//! let loss = a.matmul(&b).sum();
//! loss.backward();
//! assert_eq!(a.grad().unwrap(), vec![1.0, 1.0, 1.0, 1.0]);
//! ```

pub mod crc;
pub mod grad;
pub mod init;
pub mod io;
pub mod kernels;
pub mod memory;
pub mod microkernel;
pub mod pack;
pub mod ops;
pub mod optim;
pub mod par;
pub mod shape;
pub mod tensor;

pub use grad::no_grad;
pub use io::{CheckpointError, StateDict};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::grad::no_grad;
    pub use crate::init;
    pub use crate::optim::{Adam, AdamW, Optimizer, Sgd};
    pub use crate::shape::Shape;
    pub use crate::tensor::Tensor;
}
