//! The [`Tensor`] type: reference-counted storage plus autograd metadata.

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::grad::{self, Node};
use crate::memory::Buffer;
use crate::shape::Shape;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Inner {
    pub(crate) id: u64,
    pub(crate) shape: Shape,
    pub(crate) data: RefCell<Buffer>,
    pub(crate) grad: RefCell<Option<Buffer>>,
    pub(crate) requires_grad: Cell<bool>,
    pub(crate) node: RefCell<Option<Node>>,
}

/// A dense f32 tensor. Cheap to clone (shares storage and autograd state).
#[derive(Clone)]
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    pub(crate) fn from_buffer(buffer: Buffer, shape: Shape) -> Self {
        assert_eq!(
            buffer.len(),
            shape.numel(),
            "buffer length {} does not match shape {} ({} elements)",
            buffer.len(),
            shape,
            shape.numel()
        );
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                shape,
                data: RefCell::new(buffer),
                grad: RefCell::new(None),
                requires_grad: Cell::new(false),
                node: RefCell::new(None),
            }),
        }
    }

    /// Tensor from an owned vector and a dim slice.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        Tensor::from_buffer(Buffer::from_vec(data), Shape::new(dims))
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor::from_buffer(Buffer::zeros(shape.numel()), shape)
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor::from_buffer(Buffer::from_vec(vec![value; shape.numel()]), shape)
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_buffer(Buffer::from_vec(vec![value]), Shape::scalar())
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// `[0, 1, ..., n-1]` as f32.
    pub fn arange(n: usize) -> Self {
        Tensor::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Mark this tensor as a trainable leaf (builder style).
    pub fn requires_grad(self) -> Self {
        self.inner.requires_grad.set(true);
        self
    }

    /// Enable/disable gradient tracking on an existing tensor.
    pub fn set_requires_grad(&self, value: bool) {
        self.inner.requires_grad.set(value);
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Unique id (useful for debugging graphs).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    pub fn dims(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    pub fn numel(&self) -> usize {
        self.inner.shape.numel()
    }

    pub fn rank(&self) -> usize {
        self.inner.shape.rank()
    }

    pub fn requires_grad_enabled(&self) -> bool {
        self.inner.requires_grad.get()
    }

    /// Borrow the raw data.
    pub fn data(&self) -> Ref<'_, Buffer> {
        self.inner.data.borrow()
    }

    /// Mutably borrow the raw data (used by optimisers; does not invalidate
    /// autograd history — callers must only do this on leaves).
    pub fn data_mut(&self) -> RefMut<'_, Buffer> {
        self.inner.data.borrow_mut()
    }

    /// Copy the data out as a `Vec<f32>`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.data.borrow().as_slice().to_vec()
    }

    /// The single value of a one-element tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with {} elements", self.numel());
        self.inner.data.borrow()[0]
    }

    /// Element at flat index `i`.
    pub fn at(&self, i: usize) -> f32 {
        self.inner.data.borrow()[i]
    }

    /// Element of a rank-2 tensor at `(row, col)`.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        let (_, cols) = self.shape().as_matrix();
        self.inner.data.borrow()[row * cols + col]
    }

    // ------------------------------------------------------------------
    // Gradients
    // ------------------------------------------------------------------

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().as_ref().map(|b| b.as_slice().to_vec())
    }

    /// Clear the gradient buffer.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Overwrite this tensor's gradient buffer with `g`. Public so fault
    /// harnesses and tests can plant specific gradients (e.g. NaN
    /// poisoning); the autograd engine itself accumulates instead.
    pub fn set_grad(&self, g: &[f32]) {
        self.zero_grad();
        self.accumulate_grad(g);
    }

    /// Accumulate `g` into this tensor's gradient buffer.
    pub(crate) fn accumulate_grad(&self, g: &[f32]) {
        assert_eq!(g.len(), self.numel(), "gradient length mismatch");
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => {
                for (dst, src) in existing.as_mut_slice().iter_mut().zip(g) {
                    *dst += *src;
                }
            }
            None => *slot = Some(Buffer::from_vec(g.to_vec())),
        }
    }

    /// Run reverse-mode autodiff from this scalar tensor.
    ///
    /// Panics if the tensor has more than one element; use
    /// [`Tensor::backward_with`] to seed a non-scalar output.
    pub fn backward(&self) {
        assert_eq!(self.numel(), 1, "backward() requires a scalar; use backward_with");
        self.backward_with(&[1.0]);
    }

    /// Run reverse-mode autodiff with an explicit output gradient.
    pub fn backward_with(&self, seed: &[f32]) {
        grad::run_backward(self, seed);
    }

    /// A new tensor sharing this tensor's storage but detached from the
    /// autograd graph.
    pub fn detach(&self) -> Tensor {
        let t = Tensor::from_buffer(Buffer::from_vec(self.to_vec()), *self.shape());
        t
    }

    /// Whether an autograd node is attached (i.e. this is a non-leaf).
    pub fn has_grad_fn(&self) -> bool {
        self.inner.node.borrow().is_some()
    }

    pub(crate) fn set_node(&self, node: Node) {
        *self.inner.node.borrow_mut() = Some(node);
    }

    /// Whether backward should flow through this tensor: it is a
    /// gradient-requiring leaf or has a recorded grad fn.
    pub(crate) fn tracks_grad(&self) -> bool {
        self.inner.requires_grad.get() || self.has_grad_fn()
    }

    // ------------------------------------------------------------------
    // In-place maintenance (leaves only)
    // ------------------------------------------------------------------

    /// Overwrite this tensor's data with `src` (same length required).
    pub fn copy_from_slice(&self, src: &[f32]) {
        let mut data = self.inner.data.borrow_mut();
        assert_eq!(data.len(), src.len(), "copy_from_slice length mismatch");
        data.as_mut_slice().copy_from_slice(src);
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let data = self.inner.data.borrow();
        let preview: Vec<f32> = data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(id={}, shape={}, requires_grad={}, data≈{:?}{})",
            self.inner.id,
            self.inner.shape,
            self.inner.requires_grad.get(),
            preview,
            if data.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.numel(), 12);
        assert_eq!(t.dims(), &[3, 4]);
        assert!(t.to_vec().iter().all(|&x| x == 0.0));

        let e = Tensor::eye(3);
        assert_eq!(e.at2(0, 0), 1.0);
        assert_eq!(e.at2(0, 1), 0.0);
        assert_eq!(e.at2(2, 2), 1.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic(expected = "item()")]
    fn item_on_vector_panics() {
        Tensor::zeros(&[2]).item();
    }

    #[test]
    fn grad_accumulation_adds() {
        let t = Tensor::zeros(&[2]).requires_grad();
        t.accumulate_grad(&[1.0, 2.0]);
        t.accumulate_grad(&[0.5, 0.5]);
        assert_eq!(t.grad().unwrap(), vec![1.5, 2.5]);
        t.zero_grad();
        assert!(t.grad().is_none());
    }

    #[test]
    fn detach_breaks_history() {
        let a = Tensor::ones(&[2]).requires_grad();
        let b = a.mul_scalar(3.0);
        assert!(b.has_grad_fn());
        let d = b.detach();
        assert!(!d.has_grad_fn());
        assert_eq!(d.to_vec(), vec![3.0, 3.0]);
    }

    #[test]
    fn arange_values() {
        assert_eq!(Tensor::arange(4).to_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }
}
