//! GEMM micro-kernels: the innermost register tile of the packed stack.
//!
//! A micro-kernel consumes one packed B strip ([`pack::NR`] columns of one
//! k panel, k-major — see [`crate::pack`]) against 1 or [`pack::MR`] rows of
//! `A` and returns the per-panel accumulators. The caller (the macro-kernel
//! in [`crate::kernels`]) adds them into `c`.
//!
//! ## The canonical schedule
//!
//! Bit-identity across thread counts *and* across the scalar/SIMD variants
//! hinges on every output element seeing the identical sequence of f32
//! operations. The contract, per element `c[i,j]` and per k panel
//! `kk0..kk0+h`:
//!
//! ```text
//! acc = 0.0
//! for kk in kk0..kk0+h (ascending): acc += a[i,kk] * b[kk,j]   // mul, then add
//! c[i,j] += acc                                                 // one add per panel
//! ```
//!
//! The SIMD variant vectorises across `j` — output columns are independent
//! lanes, so each lane executes exactly the scalar sequence and IEEE-754
//! lane-wise `mul`/`add` produce the same bits. FMA is deliberately **not**
//! used: it would skip the intermediate rounding of the multiply and change
//! results. The `simd` feature is therefore an optimisation flag, never a
//! semantics flag; `tests` under `--features simd` assert scalar/AVX
//! equality to the bit.

use crate::pack::NR;

/// Per-panel accumulators for an MR×NR tile.
pub type Acc4 = [[f32; NR]; 4];

/// Dispatch table for the macro-kernel: generic over tile implementation so
/// the packed driver can be monomorphised for the auto (possibly SIMD) path
/// and the always-scalar reference path without duplicating loop nests.
pub(crate) trait Tiles {
    fn tile4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], kk0: usize, strip: &[f32]) -> Acc4;
    fn tile1(a: &[f32], kk0: usize, strip: &[f32]) -> [f32; NR];
}

/// Always-scalar tiles: the bit-exact reference implementation.
pub(crate) struct ScalarTiles;

impl Tiles for ScalarTiles {
    #[inline]
    fn tile4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], kk0: usize, strip: &[f32]) -> Acc4 {
        tile4_scalar(a0, a1, a2, a3, kk0, strip)
    }

    #[inline]
    fn tile1(a: &[f32], kk0: usize, strip: &[f32]) -> [f32; NR] {
        tile1_scalar(a, kk0, strip)
    }
}

/// Runtime-dispatching tiles: AVX when the `simd` feature is on and the CPU
/// supports it, scalar otherwise.
pub(crate) struct AutoTiles;

impl Tiles for AutoTiles {
    #[inline]
    fn tile4(a0: &[f32], a1: &[f32], a2: &[f32], a3: &[f32], kk0: usize, strip: &[f32]) -> Acc4 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd_active() {
            // SAFETY: simd_active() verified AVX support at runtime.
            return unsafe { avx::tile4(a0, a1, a2, a3, kk0, strip) };
        }
        tile4_scalar(a0, a1, a2, a3, kk0, strip)
    }

    #[inline]
    fn tile1(a: &[f32], kk0: usize, strip: &[f32]) -> [f32; NR] {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd_active() {
            // SAFETY: simd_active() verified AVX support at runtime.
            return unsafe { avx::tile1(a, kk0, strip) };
        }
        tile1_scalar(a, kk0, strip)
    }
}

/// True when the AVX micro-kernel is compiled in *and* the CPU supports it.
/// Reported by `perf_drill` so BENCH_perf.json records which path ran.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static AVX: OnceLock<bool> = OnceLock::new();
        *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Scalar MR×NR tile. The lane loop is a fixed-trip `NR`-wide sweep split
/// into two 8-lane halves, written so the autovectoriser can keep each half
/// in one vector register — and so the AVX variant below is a transparent
/// transcription of the same operation order.
#[inline]
pub(crate) fn tile4_scalar(
    a0: &[f32],
    a1: &[f32],
    a2: &[f32],
    a3: &[f32],
    kk0: usize,
    strip: &[f32],
) -> Acc4 {
    debug_assert_eq!(strip.len() % NR, 0);
    let h = strip.len() / NR;
    // Fixed-length views: the axpy helper runs over `[f32; NR]`, so the
    // compiler fully unrolls the lane sweep and keeps each 8-lane half in
    // one vector register; subslices of `a` keep the k loop free of bounds
    // checks. Rows are four separate axpy calls (not a 4-element array
    // loop) so the vectoriser packs lanes, not rows.
    let (a0, a1) = (&a0[kk0..kk0 + h], &a1[kk0..kk0 + h]);
    let (a2, a3) = (&a2[kk0..kk0 + h], &a3[kk0..kk0 + h]);
    let mut acc: Acc4 = [[0.0; NR]; 4];
    let [acc0, acc1, acc2, acc3] = &mut acc;
    for (step, bv) in strip.chunks_exact(NR).enumerate() {
        let bv: &[f32; NR] = bv.try_into().expect("chunks_exact(NR)");
        axpy_nr(acc0, a0[step], bv);
        axpy_nr(acc1, a1[step], bv);
        axpy_nr(acc2, a2[step], bv);
        axpy_nr(acc3, a3[step], bv);
    }
    acc
}

/// `acc[j] += x * b[j]` over all NR lanes: one IEEE mul then one IEEE add
/// per lane, lanes independent — the unit the SIMD variant transcribes.
#[inline(always)]
fn axpy_nr(acc: &mut [f32; NR], x: f32, b: &[f32; NR]) {
    for j in 0..NR {
        acc[j] += x * b[j];
    }
}

/// Scalar 1×NR tile for row remainders.
#[inline]
pub(crate) fn tile1_scalar(a: &[f32], kk0: usize, strip: &[f32]) -> [f32; NR] {
    debug_assert_eq!(strip.len() % NR, 0);
    let h = strip.len() / NR;
    let a = &a[kk0..kk0 + h];
    let mut acc = [0.0f32; NR];
    for (step, bv) in strip.chunks_exact(NR).enumerate() {
        let bv: &[f32; NR] = bv.try_into().expect("chunks_exact(NR)");
        axpy_nr(&mut acc, a[step], bv);
    }
    acc
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx {
    //! AVX transcription of the scalar tiles. Each 256-bit register holds 8
    //! output lanes; `_mm256_mul_ps` + `_mm256_add_ps` are lane-wise IEEE
    //! single rounding steps, identical to the scalar `x * b` then `+=`.

    use super::{Acc4, NR};
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx")]
    pub unsafe fn tile4(
        a0: &[f32],
        a1: &[f32],
        a2: &[f32],
        a3: &[f32],
        kk0: usize,
        strip: &[f32],
    ) -> Acc4 {
        debug_assert_eq!(strip.len() % NR, 0);
        let h = strip.len() / NR;
        let mut acc = [[_mm256_setzero_ps(); 2]; 4];
        for step in 0..h {
            let kk = kk0 + step;
            let base = strip.as_ptr().add(step * NR);
            let b_lo = _mm256_loadu_ps(base);
            let b_hi = _mm256_loadu_ps(base.add(8));
            let xs = [
                _mm256_set1_ps(*a0.get_unchecked(kk)),
                _mm256_set1_ps(*a1.get_unchecked(kk)),
                _mm256_set1_ps(*a2.get_unchecked(kk)),
                _mm256_set1_ps(*a3.get_unchecked(kk)),
            ];
            for (row, x) in acc.iter_mut().zip(xs) {
                row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(x, b_lo));
                row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(x, b_hi));
            }
        }
        let mut out: Acc4 = [[0.0; NR]; 4];
        for (dst, row) in out.iter_mut().zip(acc) {
            _mm256_storeu_ps(dst.as_mut_ptr(), row[0]);
            _mm256_storeu_ps(dst.as_mut_ptr().add(8), row[1]);
        }
        out
    }

    #[target_feature(enable = "avx")]
    pub unsafe fn tile1(a: &[f32], kk0: usize, strip: &[f32]) -> [f32; NR] {
        debug_assert_eq!(strip.len() % NR, 0);
        let h = strip.len() / NR;
        let mut lo = _mm256_setzero_ps();
        let mut hi = _mm256_setzero_ps();
        for step in 0..h {
            let base = strip.as_ptr().add(step * NR);
            let x = _mm256_set1_ps(*a.get_unchecked(kk0 + step));
            lo = _mm256_add_ps(lo, _mm256_mul_ps(x, _mm256_loadu_ps(base)));
            hi = _mm256_add_ps(hi, _mm256_mul_ps(x, _mm256_loadu_ps(base.add(8))));
        }
        let mut out = [0.0f32; NR];
        _mm256_storeu_ps(out.as_mut_ptr(), lo);
        _mm256_storeu_ps(out.as_mut_ptr().add(8), hi);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack_b, KC};

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 9) as f32 / (1 << 21) as f32 - 2.0
            })
            .collect()
    }

    #[test]
    fn tile4_matches_naive_panel_product() {
        let (k, n) = (KC + 19, NR);
        let rows: Vec<Vec<f32>> = (0..4).map(|r| filled(k, 100 + r)).collect();
        let b = filled(k * n, 7);
        let packed = pack_b(&b, k, n);
        // Accumulate across panels exactly as the macro-kernel does.
        let mut c = [[0.0f32; NR]; 4];
        let mut kk0 = 0;
        while kk0 < k {
            let h = KC.min(k - kk0);
            let acc = tile4_scalar(&rows[0], &rows[1], &rows[2], &rows[3], kk0, packed.strip(kk0, h, 0));
            for (c_row, acc_row) in c.iter_mut().zip(acc) {
                for (dst, v) in c_row.iter_mut().zip(acc_row) {
                    *dst += v;
                }
            }
            kk0 += KC;
        }
        for (r, row) in rows.iter().enumerate() {
            for j in 0..n {
                let mut kk0 = 0;
                let mut want = 0.0f32;
                while kk0 < k {
                    let h = KC.min(k - kk0);
                    let mut acc = 0.0f32;
                    for kk in kk0..kk0 + h {
                        acc += row[kk] * b[kk * n + j];
                    }
                    want += acc;
                    kk0 += KC;
                }
                assert_eq!(c[r][j].to_bits(), want.to_bits(), "r={r} j={j}");
            }
        }
    }

    #[test]
    fn tile1_matches_tile4_rows() {
        let k = 37;
        let rows: Vec<Vec<f32>> = (0..4).map(|r| filled(k, 200 + r)).collect();
        let packed = pack_b(&filled(k * NR, 3), k, NR);
        let strip = packed.strip(0, k, 0);
        let four = tile4_scalar(&rows[0], &rows[1], &rows[2], &rows[3], 0, strip);
        for (r, row) in rows.iter().enumerate() {
            let one = tile1_scalar(row, 0, strip);
            assert_eq!(one, four[r], "row {r}");
        }
    }

    #[cfg(feature = "simd")]
    #[test]
    fn avx_tiles_bit_match_scalar() {
        if !simd_active() {
            eprintln!("avx not available on this CPU; skipping");
            return;
        }
        let k = KC + 11;
        let rows: Vec<Vec<f32>> = (0..4).map(|r| filled(k, 300 + r)).collect();
        let packed = pack_b(&filled(k * NR, 13), k, NR);
        let mut kk0 = 0;
        while kk0 < k {
            let h = KC.min(k - kk0);
            let strip = packed.strip(kk0, h, 0);
            let scalar = tile4_scalar(&rows[0], &rows[1], &rows[2], &rows[3], kk0, strip);
            let simd = <AutoTiles as Tiles>::tile4(&rows[0], &rows[1], &rows[2], &rows[3], kk0, strip);
            for r in 0..4 {
                for l in 0..NR {
                    assert_eq!(scalar[r][l].to_bits(), simd[r][l].to_bits(), "kk0={kk0} r={r} l={l}");
                }
            }
            let s1 = tile1_scalar(&rows[0], kk0, strip);
            let v1 = <AutoTiles as Tiles>::tile1(&rows[0], kk0, strip);
            assert_eq!(s1.map(f32::to_bits), v1.map(f32::to_bits));
            kk0 += KC;
        }
    }
}
