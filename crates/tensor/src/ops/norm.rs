//! Normalisation ops: layer norm and row-wise L2 normalisation.

use super::{out_grad, result};
use crate::tensor::Tensor;

impl Tensor {
    /// Layer normalisation over the last axis with affine parameters
    /// `gamma`/`beta` of length `last_dim`.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        let d = self.shape().last_dim();
        assert_eq!(gamma.numel(), d, "layer_norm: gamma length mismatch");
        assert_eq!(beta.numel(), d, "layer_norm: beta length mismatch");
        let rows = self.shape().leading();
        let src = self.data();
        let gm = gamma.data();
        let bt = beta.data();
        let mut data = vec![0.0f32; rows * d];
        // Save per-row mean and inverse stddev plus normalised values for backward.
        let mut xhat = vec![0.0f32; rows * d];
        let mut inv_std = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &src[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            for j in 0..d {
                let xh = (row[j] - mean) * istd;
                xhat[r * d + j] = xh;
                data[r * d + j] = xh * gm[j] + bt[j];
            }
        }
        drop((src, gm, bt));
        let (x, g, b) = (self.clone(), gamma.clone(), beta.clone());
        result(
            data,
            *self.shape(),
            vec![self.clone(), gamma.clone(), beta.clone()],
            "layer_norm",
            move |out| {
                let gr = out_grad(out);
                if b.tracks_grad() {
                    let mut db = vec![0.0f32; d];
                    for r in 0..rows {
                        for j in 0..d {
                            db[j] += gr[r * d + j];
                        }
                    }
                    b.accumulate_grad(&db);
                }
                if g.tracks_grad() {
                    let mut dg = vec![0.0f32; d];
                    for r in 0..rows {
                        for j in 0..d {
                            dg[j] += gr[r * d + j] * xhat[r * d + j];
                        }
                    }
                    g.accumulate_grad(&dg);
                }
                if x.tracks_grad() {
                    let gm = g.data();
                    let mut dx = vec![0.0f32; rows * d];
                    for r in 0..rows {
                        // dxhat = dy * gamma
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..d {
                            let dxh = gr[r * d + j] * gm[j];
                            sum_dxhat += dxh;
                            sum_dxhat_xhat += dxh * xhat[r * d + j];
                        }
                        let istd = inv_std[r];
                        let dn = d as f32;
                        for j in 0..d {
                            let dxh = gr[r * d + j] * gm[j];
                            dx[r * d + j] = istd
                                * (dxh - sum_dxhat / dn - xhat[r * d + j] * sum_dxhat_xhat / dn);
                        }
                    }
                    x.accumulate_grad(&dx);
                }
            },
        )
    }

    /// L2-normalise every row of a rank-2 tensor (rank-1 treated as a single
    /// row). This is the projection step before cosine similarity in CLIP.
    pub fn l2_normalize_rows(&self) -> Tensor {
        let d = self.shape().last_dim();
        let rows = self.shape().leading();
        let src = self.data();
        let mut data = vec![0.0f32; rows * d];
        let mut norms = vec![0.0f32; rows];
        for r in 0..rows {
            let row = &src[r * d..(r + 1) * d];
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            norms[r] = n;
            for j in 0..d {
                data[r * d + j] = row[j] / n;
            }
        }
        drop(src);
        let a = self.clone();
        let saved = data.clone();
        result(data, *self.shape(), vec![self.clone()], "l2_normalize_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; rows * d];
                for r in 0..rows {
                    let y = &saved[r * d..(r + 1) * d];
                    let gr = &g[r * d..(r + 1) * d];
                    let dot: f32 = y.iter().zip(gr).map(|(y, g)| y * g).sum();
                    let n = norms[r];
                    for j in 0..d {
                        da[r * d + j] = (gr[j] - y[j] * dot) / n;
                    }
                }
                a.accumulate_grad(&da);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Vec<f32> {
        let base = x.to_vec();
        (0..base.len())
            .map(|i| {
                let mut plus = base.clone();
                plus[i] += eps;
                let mut minus = base.clone();
                minus[i] -= eps;
                (f(&Tensor::from_vec(plus, x.dims())) - f(&Tensor::from_vec(minus, x.dims())))
                    / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let y = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        for r in 0..2 {
            let row = &y[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layer_norm_affine_applied() {
        let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]);
        let gamma = Tensor::from_vec(vec![2.0, 2.0], &[2]);
        let beta = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let y = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        assert!((y[0] - 3.0).abs() < 1e-3);
        assert!((y[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_grads_match_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.3, 0.9, -0.4], &[2, 3]).requires_grad();
        let gamma = Tensor::from_vec(vec![1.2, 0.8, 1.0], &[3]).requires_grad();
        let beta = Tensor::from_vec(vec![0.1, -0.1, 0.0], &[3]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 2.0, -1.0, 0.5, 1.5, -0.5], &[2, 3]);
        x.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum().backward();

        let fd_x = finite_diff(|t| t.layer_norm(&gamma, &beta, 1e-5).mul(&w).sum().item(), &x, 1e-3);
        assert_close(&x.grad().unwrap(), &fd_x, 2e-2);
        let fd_g =
            finite_diff(|t| x.layer_norm(t, &beta, 1e-5).mul(&w).sum().item(), &gamma, 1e-3);
        assert_close(&gamma.grad().unwrap(), &fd_g, 2e-2);
        let fd_b = finite_diff(|t| x.layer_norm(&gamma, t, 1e-5).mul(&w).sum().item(), &beta, 1e-3);
        assert_close(&beta.grad().unwrap(), &fd_b, 2e-2);
    }

    #[test]
    fn l2_normalize_unit_rows() {
        let x = Tensor::from_vec(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]);
        let y = x.l2_normalize_rows();
        assert_close(&y.to_vec(), &[0.6, 0.8, 0.0, 1.0], 1e-6);
    }

    #[test]
    fn l2_normalize_grad_matches_finite_difference() {
        let x = Tensor::from_vec(vec![1.0, 2.0, -0.5, 0.7], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![0.3, -0.9, 1.1, 0.2], &[2, 2]);
        x.l2_normalize_rows().mul(&w).sum().backward();
        let fd = finite_diff(|t| t.l2_normalize_rows().mul(&w).sum().item(), &x, 1e-3);
        assert_close(&x.grad().unwrap(), &fd, 1e-2);
    }

    #[test]
    fn l2_normalize_is_scale_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y1 = x.l2_normalize_rows().to_vec();
        let y2 = x.mul_scalar(7.5).l2_normalize_rows().to_vec();
        assert_close(&y1, &y2, 1e-6);
    }
}
