//! Activations, row-wise softmax family, and cross-entropy.
//!
//! The pointwise activations route through the fused maps in
//! [`super::fused`]: the forward sweep produces value + derivative in one
//! (parallel) pass, and backward is a single `g ⊙ d` zip.

use super::fused::unary_map;
use super::{out_grad, result};
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary_map(self, "relu", |x| (x.max(0.0), if x > 0.0 { 1.0 } else { 0.0 }))
    }

    /// Tanh-approximated GELU (as in GPT-2 / the CLIP text transformer).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        unary_map(self, "gelu", |x| {
            let u = C * (x + 0.044715 * x * x * x);
            let t = u.tanh();
            let du = C * (1.0 + 3.0 * 0.044715 * x * x);
            (0.5 * x * (1.0 + t), 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du)
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        unary_map(self, "sigmoid", |x| {
            let y = 1.0 / (1.0 + (-x).exp());
            (y, y * (1.0 - y))
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary_map(self, "tanh", |x| {
            let y = x.tanh();
            (y, 1.0 - y * y)
        })
    }

    /// Numerically-stable softmax over the last axis.
    pub fn softmax_rows(&self) -> Tensor {
        let d = self.shape().last_dim();
        let rows = self.shape().leading();
        let src = self.data();
        let mut data = vec![0.0f32; rows * d];
        for r in 0..rows {
            let row = &src[r * d..(r + 1) * d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in data[r * d..(r + 1) * d].iter_mut().zip(row) {
                let e = (x - m).exp();
                *o = e;
                denom += e;
            }
            for o in data[r * d..(r + 1) * d].iter_mut() {
                *o /= denom;
            }
        }
        drop(src);
        let a = self.clone();
        let saved = data.clone();
        result(data, *self.shape(), vec![self.clone()], "softmax_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; rows * d];
                for r in 0..rows {
                    let y = &saved[r * d..(r + 1) * d];
                    let gr = &g[r * d..(r + 1) * d];
                    let dot: f32 = y.iter().zip(gr).map(|(y, g)| y * g).sum();
                    for ((o, &yv), &gv) in
                        da[r * d..(r + 1) * d].iter_mut().zip(y).zip(gr)
                    {
                        *o = yv * (gv - dot);
                    }
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Numerically-stable log-softmax over the last axis.
    pub fn log_softmax_rows(&self) -> Tensor {
        let d = self.shape().last_dim();
        let rows = self.shape().leading();
        let src = self.data();
        let mut data = vec![0.0f32; rows * d];
        for r in 0..rows {
            let row = &src[r * d..(r + 1) * d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for (o, &x) in data[r * d..(r + 1) * d].iter_mut().zip(row) {
                *o = x - lse;
            }
        }
        drop(src);
        let a = self.clone();
        let saved = data.clone();
        result(data, *self.shape(), vec![self.clone()], "log_softmax_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; rows * d];
                for r in 0..rows {
                    let logp = &saved[r * d..(r + 1) * d];
                    let gr = &g[r * d..(r + 1) * d];
                    let gsum: f32 = gr.iter().sum();
                    for ((o, &lp), &gv) in
                        da[r * d..(r + 1) * d].iter_mut().zip(logp).zip(gr)
                    {
                        *o = gv - lp.exp() * gsum;
                    }
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Mean cross-entropy of row-wise logits against integer `targets`
    /// (one target class per row). Used for both directions of the CLIP
    /// contrastive loss and for the supervised baselines.
    pub fn cross_entropy_rows(&self, targets: &[usize]) -> Tensor {
        let (rows, classes) = self.shape().as_matrix();
        assert_eq!(targets.len(), rows, "cross_entropy_rows: {} targets for {rows} rows", targets.len());
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < classes, "target {t} out of range {classes} at row {r}");
        }
        let src = self.data();
        // Forward: mean over rows of (logsumexp(row) - row[target]).
        let mut softmaxes = vec![0.0f32; rows * classes];
        let mut loss = 0.0f32;
        for r in 0..rows {
            let row = &src[r * classes..(r + 1) * classes];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in softmaxes[r * classes..(r + 1) * classes].iter_mut().zip(row) {
                let e = (x - m).exp();
                *o = e;
                denom += e;
            }
            for o in softmaxes[r * classes..(r + 1) * classes].iter_mut() {
                *o /= denom;
            }
            let lse = m + denom.ln();
            loss += lse - row[targets[r]];
        }
        loss /= rows as f32;
        drop(src);
        let a = self.clone();
        let targets = targets.to_vec();
        result(vec![loss], Shape::scalar(), vec![self.clone()], "cross_entropy_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out)[0] / rows as f32;
                let mut da = softmaxes.clone();
                for (r, &t) in targets.iter().enumerate() {
                    da[r * classes + t] -= 1.0;
                }
                for v in da.iter_mut() {
                    *v *= g;
                }
                a.accumulate_grad(&da);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Vec<f32> {
        let base = x.to_vec();
        (0..base.len())
            .map(|i| {
                let mut plus = base.clone();
                plus[i] += eps;
                let mut minus = base.clone();
                minus[i] -= eps;
                (f(&Tensor::from_vec(plus, x.dims())) - f(&Tensor::from_vec(minus, x.dims())))
                    / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn relu_values_and_grad() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).requires_grad();
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 0.0, 2.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn gelu_matches_finite_difference() {
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]).requires_grad();
        x.gelu().sum().backward();
        let fd = finite_diff(|t| t.gelu().sum().item(), &x, 1e-3);
        assert_close(&x.grad().unwrap(), &fd, 1e-2);
    }

    #[test]
    fn sigmoid_tanh_grads() {
        let x = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        x.sigmoid().sum().backward();
        assert!((x.grad().unwrap()[0] - 0.25).abs() < 1e-6);

        let z = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        z.tanh().sum().backward();
        assert!((z.grad().unwrap()[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1001.0, 1002.0], &[2, 3]);
        let y = x.softmax_rows();
        let v = y.to_vec();
        assert!((v[0..3].iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((v[3..6].iter().sum::<f32>() - 1.0).abs() < 1e-6);
        // Shift invariance: both rows have the same relative logits.
        assert_close(&v[0..3], &v[3..6], 1e-5);
    }

    #[test]
    fn softmax_grad_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.1, -0.4, 0.7, 0.2], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        x.softmax_rows().mul(&w).sum().backward();
        let fd = finite_diff(|t| t.softmax_rows().mul(&w).sum().item(), &x, 1e-3);
        assert_close(&x.grad().unwrap(), &fd, 1e-2);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0], &[1, 3]);
        let ls = x.log_softmax_rows().to_vec();
        let s = x.softmax_rows().to_vec();
        for (l, p) in ls.iter().zip(&s) {
            assert!((l.exp() - p).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_grad_matches_finite_difference() {
        let x = Tensor::from_vec(vec![0.5, -0.2, 1.0, 0.0], &[2, 2]).requires_grad();
        let w = Tensor::from_vec(vec![1.0, -1.0, 0.5, 2.0], &[2, 2]);
        x.log_softmax_rows().mul(&w).sum().backward();
        let fd = finite_diff(|t| t.log_softmax_rows().mul(&w).sum().item(), &x, 1e-3);
        assert_close(&x.grad().unwrap(), &fd, 1e-2);
    }

    #[test]
    fn cross_entropy_matches_manual_form() {
        let logits = Tensor::from_vec(vec![2.0, 1.0, 0.5, 0.0, 3.0, -1.0], &[2, 3]);
        let ce = logits.cross_entropy_rows(&[0, 1]).item();
        let manual = {
            let lp = logits.log_softmax_rows().to_vec();
            -(lp[0] + lp[4]) / 2.0
        };
        assert!((ce - manual).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits =
            Tensor::from_vec(vec![0.2, -0.1, 0.4, 1.0, 0.0, -0.5], &[2, 3]).requires_grad();
        logits.cross_entropy_rows(&[2, 0]).backward();
        let fd = finite_diff(|t| t.cross_entropy_rows(&[2, 0]).item(), &logits, 1e-3);
        assert_close(&logits.grad().unwrap(), &fd, 1e-2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_bad_target_panics() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = logits.cross_entropy_rows(&[5]);
    }
}
