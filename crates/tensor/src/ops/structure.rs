//! Structural ops: reshape, row gather/scatter, concatenation, stacking,
//! slicing. These carry most of the "graph → prompt" plumbing: embedding
//! lookups are [`Tensor::gather_rows`], the soft-prompt concat (paper Eq. 7)
//! is [`Tensor::concat_cols`], mini-batch assembly uses [`Tensor::stack_rows`].

use super::{out_grad, result};
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Reinterpret the data with a new shape (same number of elements).
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(shape.numel(), self.numel(), "reshape: {} -> {} element mismatch", self.shape(), shape);
        let a = self.clone();
        result(self.to_vec(), shape, vec![self.clone()], "reshape", move |out| {
            if a.tracks_grad() {
                a.accumulate_grad(&out_grad(out));
            }
        })
    }

    /// Gather rows of a rank-2 tensor by index: `[V, D] x indices -> [N, D]`.
    /// Backward scatter-adds into the source rows (this is the embedding op).
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let (v, d) = self.shape().as_matrix();
        let src = self.data();
        let mut data = Vec::with_capacity(indices.len() * d);
        for (pos, &i) in indices.iter().enumerate() {
            assert!(i < v, "gather_rows: index {i} out of range {v} at position {pos}");
            data.extend_from_slice(&src[i * d..(i + 1) * d]);
        }
        drop(src);
        let a = self.clone();
        let idx = indices.to_vec();
        let n = indices.len();
        result(data, Shape::new(&[n, d]), vec![self.clone()], "gather_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; v * d];
                for (pos, &i) in idx.iter().enumerate() {
                    for (dst, src) in
                        da[i * d..(i + 1) * d].iter_mut().zip(&g[pos * d..(pos + 1) * d])
                    {
                        *dst += *src;
                    }
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Select a contiguous row range `[start, end)` of a rank-2 tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        let (rows, d) = self.shape().as_matrix();
        assert!(start <= end && end <= rows, "slice_rows: bad range {start}..{end} of {rows}");
        let data = self.data()[start * d..end * d].to_vec();
        let a = self.clone();
        let n = end - start;
        result(data, Shape::new(&[n, d]), vec![self.clone()], "slice_rows", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; rows * d];
                da[start * d..end * d].copy_from_slice(&g);
                a.accumulate_grad(&da);
            }
        })
    }

    /// Extract a single row of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, index: usize) -> Tensor {
        let (_, d) = self.shape().as_matrix();
        self.slice_rows(index, index + 1).reshape(&[d])
    }

    /// Concatenate two tensors along the last axis: `[N, A] ++ [N, B] -> [N, A+B]`.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        let (n1, a_cols) = self.shape().as_matrix();
        let (n2, b_cols) = other.shape().as_matrix();
        assert_eq!(n1, n2, "concat_cols: row count mismatch {n1} vs {n2}");
        let sa = self.data();
        let sb = other.data();
        let mut data = Vec::with_capacity(n1 * (a_cols + b_cols));
        for r in 0..n1 {
            data.extend_from_slice(&sa[r * a_cols..(r + 1) * a_cols]);
            data.extend_from_slice(&sb[r * b_cols..(r + 1) * b_cols]);
        }
        drop((sa, sb));
        let (a, b) = (self.clone(), other.clone());
        result(
            data,
            Shape::new(&[n1, a_cols + b_cols]),
            vec![self.clone(), other.clone()],
            "concat_cols",
            move |out| {
                let g = out_grad(out);
                let w = a_cols + b_cols;
                if a.tracks_grad() {
                    let mut da = vec![0.0f32; n1 * a_cols];
                    for r in 0..n1 {
                        da[r * a_cols..(r + 1) * a_cols]
                            .copy_from_slice(&g[r * w..r * w + a_cols]);
                    }
                    a.accumulate_grad(&da);
                }
                if b.tracks_grad() {
                    let mut db = vec![0.0f32; n1 * b_cols];
                    for r in 0..n1 {
                        db[r * b_cols..(r + 1) * b_cols]
                            .copy_from_slice(&g[r * w + a_cols..(r + 1) * w]);
                    }
                    b.accumulate_grad(&db);
                }
            },
        )
    }

    /// Concatenate rank-2 tensors along rows: `[[N1,D],[N2,D],..] -> [ΣN, D]`.
    pub fn concat_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let d = parts[0].shape().last_dim();
        let mut total = 0usize;
        for p in parts {
            assert_eq!(p.shape().last_dim(), d, "concat_rows: column mismatch");
            total += p.shape().leading();
        }
        let mut data = Vec::with_capacity(total * d);
        for p in parts {
            data.extend_from_slice(&p.data());
        }
        let owned: Vec<Tensor> = parts.to_vec();
        result(data, Shape::new(&[total, d]), parts.to_vec(), "concat_rows", move |out| {
            let g = out_grad(out);
            let mut offset = 0usize;
            for p in &owned {
                let len = p.numel();
                if p.tracks_grad() {
                    p.accumulate_grad(&g[offset..offset + len]);
                }
                offset += len;
            }
        })
    }

    /// Stack rank-1 tensors of equal length into a rank-2 tensor `[N, D]`.
    pub fn stack_rows(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows: empty input");
        let d = parts[0].numel();
        let mut data = Vec::with_capacity(parts.len() * d);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.numel(), d, "stack_rows: length mismatch at {i}");
            data.extend_from_slice(&p.data());
        }
        let owned: Vec<Tensor> = parts.to_vec();
        result(data, Shape::new(&[parts.len(), d]), parts.to_vec(), "stack_rows", move |out| {
            let g = out_grad(out);
            for (i, p) in owned.iter().enumerate() {
                if p.tracks_grad() {
                    p.accumulate_grad(&g[i * d..(i + 1) * d]);
                }
            }
        })
    }

    /// Select a contiguous column range `[start, end)` of a rank-2 tensor
    /// (used to split fused QKV/head projections in attention).
    pub fn slice_cols(&self, start: usize, end: usize) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        assert!(start <= end && end <= cols, "slice_cols: bad range {start}..{end} of {cols}");
        let w = end - start;
        let src = self.data();
        let mut data = Vec::with_capacity(rows * w);
        for r in 0..rows {
            data.extend_from_slice(&src[r * cols + start..r * cols + end]);
        }
        drop(src);
        let a = self.clone();
        result(data, Shape::new(&[rows, w]), vec![self.clone()], "slice_cols", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; rows * cols];
                for r in 0..rows {
                    da[r * cols + start..r * cols + end]
                        .copy_from_slice(&g[r * w..(r + 1) * w]);
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Select arbitrary rows (with duplicates allowed) — a gather over the
    /// leading axis of a rank-2 tensor, alias of [`Tensor::gather_rows`]
    /// kept for call-site readability in sampling code.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        self.gather_rows(indices)
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn reshape_preserves_data_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let y = x.reshape(&[4]);
        assert_eq!(y.dims(), &[4]);
        y.mul_scalar(3.0).sum().backward();
        assert_eq!(x.grad().unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn gather_rows_values() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = w.gather_rows(&[2, 0, 2]);
        assert_eq!(g.dims(), &[3, 2]);
        assert_eq!(g.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_rows_scatter_adds_duplicates() {
        let w = Tensor::zeros(&[3, 2]).requires_grad();
        let g = w.gather_rows(&[1, 1, 2]);
        g.sum().backward();
        // Row 1 gathered twice -> grad 2, row 2 once -> grad 1, row 0 zero.
        assert_eq!(w.grad().unwrap(), vec![0.0, 0.0, 2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn slice_rows_and_row() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]).requires_grad();
        let s = x.slice_rows(1, 3);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        s.sum().backward();
        let g = x.grad().unwrap();
        assert_eq!(&g[0..3], &[0.0; 3]);
        assert_eq!(&g[3..9], &[1.0; 6]);
        assert_eq!(&g[9..12], &[0.0; 3]);

        let r = x.row(2);
        assert_eq!(r.dims(), &[3]);
        assert_eq!(r.to_vec(), vec![6.0, 7.0, 8.0]);
    }

    #[test]
    fn concat_cols_values_and_grads() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0], &[2, 1]).requires_grad();
        let c = a.concat_cols(&b);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 10.0, 1.0, 1.0, 10.0], &[2, 3]);
        c.mul(&w).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad().unwrap(), vec![10.0, 10.0]);
    }

    #[test]
    fn concat_rows_values_and_grads() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]).requires_grad();
        let c = Tensor::concat_rows(&[a.clone(), b.clone()]);
        assert_eq!(c.dims(), &[3, 2]);
        c.mul_scalar(2.0).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![2.0; 2]);
        assert_eq!(b.grad().unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn stack_rows_routes_gradients() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        let s = Tensor::stack_rows(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2]);
        let w = Tensor::from_vec(vec![1.0, 1.0, 5.0, 5.0], &[2, 2]);
        s.mul(&w).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad().unwrap(), vec![5.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_bad_index_panics() {
        Tensor::zeros(&[2, 2]).gather_rows(&[3]);
    }

    #[test]
    fn slice_cols_values_and_grads() {
        let x = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[2, 4]).requires_grad();
        let s = x.slice_cols(1, 3);
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.to_vec(), vec![1.0, 2.0, 5.0, 6.0]);
        s.sum().backward();
        assert_eq!(
            x.grad().unwrap(),
            vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0]
        );
    }

    #[test]
    fn slice_cols_concat_cols_roundtrip() {
        let x = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let left = x.slice_cols(0, 1);
        let right = x.slice_cols(1, 3);
        let back = left.concat_cols(&right);
        assert_eq!(back.to_vec(), x.to_vec());
    }
}
