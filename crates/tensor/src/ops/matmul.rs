//! Matrix multiplication and transposition.
//!
//! The compute lives in [`crate::kernels`]: blocked, register-tiled GEMM
//! kernels whose output rows are partitioned over the scoped thread pool
//! ([`crate::par`]). Forward passes and backward closures route through the
//! same three accumulate kernels, so gradients get the same tiling and the
//! same thread-count-independent, bit-identical results.

use super::{out_grad, result};
use crate::kernels::{gemm as gemm_acc, gemm_nt as gemm_nt_acc, gemm_tn as gemm_tn_acc};
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self[m,k] @ other[k,n] -> [m,n]`. Rank-1 left
    /// operands are treated as `[1,k]` row vectors (output stays rank 2).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = other.shape().as_matrix();
        assert_eq!(k, k2, "matmul: inner dims {k} vs {k2} (shapes {} x {})", self.shape(), other.shape());
        let mut data = vec![0.0f32; m * n];
        gemm_acc(&self.data(), &other.data(), &mut data, m, k, n);
        let (a, b) = (self.clone(), other.clone());
        result(data, Shape::new(&[m, n]), vec![self.clone(), other.clone()], "matmul", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                // dA = dY @ B^T : [m,n] x [k,n]^T -> [m,k]
                let mut da = vec![0.0f32; m * k];
                gemm_nt_acc(&g, &b.data(), &mut da, m, n, k);
                a.accumulate_grad(&da);
            }
            if b.tracks_grad() {
                // dB = A^T @ dY : [m,k]^T x [m,n] -> [k,n]
                let mut db = vec![0.0f32; k * n];
                gemm_tn_acc(&a.data(), &g, &mut db, m, k, n);
                b.accumulate_grad(&db);
            }
        })
    }

    /// Matrix product against a transposed right operand:
    /// `self[m,k] @ other[n,k]^T -> [m,n]`. This is the similarity-matrix
    /// workhorse (`queries @ keys^T`).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (n, k2) = other.shape().as_matrix();
        assert_eq!(k, k2, "matmul_nt: inner dims {k} vs {k2}");
        let mut data = vec![0.0f32; m * n];
        gemm_nt_acc(&self.data(), &other.data(), &mut data, m, k, n);
        let (a, b) = (self.clone(), other.clone());
        result(
            data,
            Shape::new(&[m, n]),
            vec![self.clone(), other.clone()],
            "matmul_nt",
            move |out| {
                let g = out_grad(out);
                if a.tracks_grad() {
                    // dA = dY @ B : [m,n] x [n,k] -> [m,k]
                    let mut da = vec![0.0f32; m * k];
                    gemm_acc(&g, &b.data(), &mut da, m, n, k);
                    a.accumulate_grad(&da);
                }
                if b.tracks_grad() {
                    // dB = dY^T @ A : [m,n]^T x [m,k] -> [n,k]
                    let mut db = vec![0.0f32; n * k];
                    gemm_tn_acc(&g, &a.data(), &mut db, m, n, k);
                    b.accumulate_grad(&db);
                }
            },
        )
    }

    /// Transpose a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape().as_matrix();
        let src = self.data();
        let mut data = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = src[i * n + j];
            }
        }
        drop(src);
        let a = self.clone();
        result(data, Shape::new(&[n, m]), vec![self.clone()], "transpose", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; m * n];
                for j in 0..n {
                    for i in 0..m {
                        da[i * n + j] = g[j * m + i];
                    }
                }
                a.accumulate_grad(&da);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.to_vec(), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.5).collect(), &[4, 3]);
        let via_nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert_close(&via_nt.to_vec(), &via_t.to_vec(), 1e-6);
    }

    #[test]
    fn matmul_gradients() {
        // y = sum(A@B); dA = 1 @ B^T (row sums of B), dB = A^T @ 1 (col... )
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).requires_grad();
        a.matmul(&b).sum().backward();
        // dA[i,k] = sum_j B[k,j]
        assert_eq!(a.grad().unwrap(), vec![11.0, 15.0, 11.0, 15.0]);
        // dB[k,j] = sum_i A[i,k]
        assert_eq!(b.grad().unwrap(), vec![4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_nt_gradients_match_composed_form() {
        let a_data: Vec<f32> = (0..6).map(|i| (i as f32) - 2.0).collect();
        let b_data: Vec<f32> = (0..9).map(|i| (i as f32) * 0.3).collect();

        let a1 = Tensor::from_vec(a_data.clone(), &[2, 3]).requires_grad();
        let b1 = Tensor::from_vec(b_data.clone(), &[3, 3]).requires_grad();
        a1.matmul_nt(&b1).sum().backward();

        let a2 = Tensor::from_vec(a_data, &[2, 3]).requires_grad();
        let b2 = Tensor::from_vec(b_data, &[3, 3]).requires_grad();
        a2.matmul(&b2.transpose()).sum().backward();

        assert_close(&a1.grad().unwrap(), &a2.grad().unwrap(), 1e-5);
        assert_close(&b1.grad().unwrap(), &b2.grad().unwrap(), 1e-5);
    }

    #[test]
    fn transpose_roundtrip_and_grad() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).requires_grad();
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at2(0, 1), a.at2(1, 0));
        let back = t.transpose();
        assert_eq!(back.to_vec(), a.to_vec());
        t.mul_scalar(2.0).sum().backward();
        assert_eq!(a.grad().unwrap(), vec![2.0; 6]);
    }

    #[test]
    fn rank1_left_operand_is_row_vector() {
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let y = v.matmul(&m);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
