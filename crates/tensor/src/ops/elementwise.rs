//! Elementwise arithmetic (same-shape binary ops, scalar ops, pointwise maps).
//!
//! Large buffers (≥ [`par::PAR_ELEMWISE_THRESHOLD`]) are partitioned over
//! the scoped thread pool; each element is computed independently, so the
//! parallel path is bit-identical to the serial one.
//!
//! Ops with non-trivial local derivatives (`div`, `exp`, `ln`, `sqrt`,
//! `abs`, `clamp`) route through the fused maps in [`super::fused`]: one
//! forward sweep produces both the value and the derivative coefficients,
//! and backward is a single `g ⊙ d` zip instead of re-reading inputs.
//! `add`/`sub`/`mul` stay unfused deliberately — their derivatives are
//! constants or the parent buffers themselves, so a fused derivative buffer
//! would only *add* memory traffic.

use super::fused::{binary_map, unary_map};
use super::{out_grad, result};
use crate::par;
use crate::tensor::Tensor;

/// `f` mapped over one slice, parallel above the size threshold.
fn map1(a: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    par::map_into(a, &mut out, par::auto_threads(a.len()), f);
    out
}

/// `f` zipped over two slices, parallel above the size threshold.
fn map2(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = vec![0.0f32; a.len()];
    par::zip_into(a, b, &mut out, par::auto_threads(a.len()), f);
    out
}

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape().same_as(other.shape()),
            "{op}: shape mismatch {} vs {}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise `self + other` (same shape).
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let data = map2(&self.data(), &other.data(), |a, b| a + b);
        let (a, b) = (self.clone(), other.clone());
        result(data, *self.shape(), vec![self.clone(), other.clone()], "add", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                a.accumulate_grad(&g);
            }
            if b.tracks_grad() {
                b.accumulate_grad(&g);
            }
        })
    }

    /// Elementwise `self - other` (same shape).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        let data = map2(&self.data(), &other.data(), |a, b| a - b);
        let (a, b) = (self.clone(), other.clone());
        result(data, *self.shape(), vec![self.clone(), other.clone()], "sub", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                a.accumulate_grad(&g);
            }
            if b.tracks_grad() {
                b.accumulate_grad(&map1(&g, |x| -x));
            }
        })
    }

    /// Elementwise `self ⊙ other` (same shape).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let data = map2(&self.data(), &other.data(), |a, b| a * b);
        let (a, b) = (self.clone(), other.clone());
        result(data, *self.shape(), vec![self.clone(), other.clone()], "mul", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                a.accumulate_grad(&map2(&g, &b.data(), |g, b| g * b));
            }
            if b.tracks_grad() {
                b.accumulate_grad(&map2(&g, &a.data(), |g, a| g * a));
            }
        })
    }

    /// Elementwise `self / other` (same shape).
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "div");
        binary_map(self, other, "div", |x, y| {
            let r = 1.0 / y;
            (x / y, r, -(x * r) * r)
        })
    }

    /// `-self`.
    pub fn neg(&self) -> Tensor {
        self.mul_scalar(-1.0)
    }

    /// `self + c` for scalar `c`.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let data = map1(&self.data(), |a| a + c);
        let a = self.clone();
        result(data, *self.shape(), vec![self.clone()], "add_scalar", move |out| {
            if a.tracks_grad() {
                a.accumulate_grad(&out_grad(out));
            }
        })
    }

    /// `self * c` for scalar `c`.
    pub fn mul_scalar(&self, c: f32) -> Tensor {
        let data = map1(&self.data(), |a| a * c);
        let a = self.clone();
        result(data, *self.shape(), vec![self.clone()], "mul_scalar", move |out| {
            if a.tracks_grad() {
                a.accumulate_grad(&map1(&out_grad(out), |g| g * c));
            }
        })
    }

    /// Elementwise `exp`.
    pub fn exp(&self) -> Tensor {
        unary_map(self, "exp", |x| {
            let y = x.exp();
            (y, y)
        })
    }

    /// Elementwise natural log (inputs must be positive).
    pub fn ln(&self) -> Tensor {
        unary_map(self, "ln", |x| (x.ln(), 1.0 / x))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        unary_map(self, "sqrt", |x| {
            let y = x.sqrt();
            (y, if y > 0.0 { 1.0 / (2.0 * y) } else { 0.0 })
        })
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.mul(self)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    pub fn abs(&self) -> Tensor {
        unary_map(self, "abs", |x| {
            let d = if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            };
            (x.abs(), d)
        })
    }

    /// Elementwise clamp into `[lo, hi]` (zero gradient outside the range).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp: lo > hi");
        unary_map(self, "clamp", move |x| {
            (x.clamp(lo, hi), if x >= lo && x <= hi { 1.0 } else { 0.0 })
        })
    }

    /// Multiply every element by a one-element tensor (differentiable in
    /// both operands) — used for learnable temperature scaling.
    pub fn mul_scalar_tensor(&self, s: &Tensor) -> Tensor {
        assert_eq!(s.numel(), 1, "mul_scalar_tensor: scale must be a single element");
        let sv = s.at(0);
        let data: Vec<f32> = self.data().iter().map(|a| a * sv).collect();
        let (a, sc) = (self.clone(), s.clone());
        result(
            data,
            *self.shape(),
            vec![self.clone(), s.clone()],
            "mul_scalar_tensor",
            move |out| {
                let g = out_grad(out);
                if a.tracks_grad() {
                    let da: Vec<f32> = g.iter().map(|g| g * sv).collect();
                    a.accumulate_grad(&da);
                }
                if sc.tracks_grad() {
                    let ds: f32 = g.iter().zip(a.data().iter()).map(|(g, x)| g * x).sum();
                    sc.accumulate_grad(&[ds]);
                }
            },
        )
    }

    /// Broadcast-add a rank-1 `bias` of length `last_dim` to every row of a
    /// rank-≥1 tensor (the standard linear-layer bias). Thin wrapper over
    /// [`Tensor::add_bcast`].
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let d = self.shape().last_dim();
        assert_eq!(bias.numel(), d, "add_row: bias length {} != last dim {}", bias.numel(), d);
        self.add_bcast(&bias.reshape(&[d]))
    }

    /// Broadcast-multiply every row of a rank-≥1 tensor elementwise by a
    /// rank-1 `scale` of length `last_dim` (the multiplicative sibling of
    /// [`Tensor::add_row`], e.g. gated fusion). Thin wrapper over
    /// [`Tensor::mul_bcast`].
    pub fn mul_row(&self, scale: &Tensor) -> Tensor {
        let d = self.shape().last_dim();
        assert_eq!(scale.numel(), d, "mul_row: scale length {} != last dim {}", scale.numel(), d);
        self.mul_bcast(&scale.reshape(&[d]))
    }

    /// Broadcast-multiply each row `r` of a rank-2 tensor by `scale[r]`
    /// (rank-1, length = number of rows). Thin wrapper over
    /// [`Tensor::mul_bcast`] with `scale` viewed as a column.
    pub fn mul_col(&self, scale: &Tensor) -> Tensor {
        let (rows, _cols) = self.shape().as_matrix();
        assert_eq!(scale.numel(), rows, "mul_col: scale length {} != rows {}", scale.numel(), rows);
        self.mul_bcast(&scale.reshape(&[rows, 1]))
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    fn finite_diff(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Vec<f32> {
        let base = x.to_vec();
        let mut grads = Vec::with_capacity(base.len());
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let fp = f(&Tensor::from_vec(plus, x.dims()));
            let fm = f(&Tensor::from_vec(minus, x.dims()));
            grads.push((fp - fm) / (2.0 * eps));
        }
        grads
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn add_sub_mul_div_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).to_vec(), vec![3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).to_vec(), vec![4.0, 2.5, 2.0]);
    }

    #[test]
    fn mul_gradients_match_finite_difference() {
        let a = Tensor::from_vec(vec![0.5, -1.0, 2.0], &[3]).requires_grad();
        let b = Tensor::from_vec(vec![1.5, 0.3, -0.7], &[3]).requires_grad();
        let y = a.mul(&b).sum();
        y.backward();
        let fd_a = finite_diff(|t| t.mul(&b).sum().item(), &a, 1e-3);
        let fd_b = finite_diff(|t| a.mul(t).sum().item(), &b, 1e-3);
        assert_close(&a.grad().unwrap(), &fd_a, 1e-2);
        assert_close(&b.grad().unwrap(), &fd_b, 1e-2);
    }

    #[test]
    fn div_gradients_match_finite_difference() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]).requires_grad();
        a.div(&b).sum().backward();
        assert_close(&a.grad().unwrap(), &[0.5, 0.25], 1e-5);
        assert_close(&b.grad().unwrap(), &[-0.25, -0.125], 1e-5);
    }

    #[test]
    fn exp_ln_sqrt_roundtrip_and_grads() {
        let x = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]).requires_grad();
        let y = x.exp().ln(); // identity
        assert_close(&y.to_vec(), &x.to_vec(), 1e-5);
        y.sum().backward();
        assert_close(&x.grad().unwrap(), &[1.0, 1.0, 1.0], 1e-4);

        let z = Tensor::from_vec(vec![4.0, 9.0], &[2]).requires_grad();
        z.sqrt().sum().backward();
        assert_close(&z.grad().unwrap(), &[0.25, 1.0 / 6.0], 1e-5);
    }

    #[test]
    fn clamp_masks_gradient() {
        let x = Tensor::from_vec(vec![-2.0, 0.5, 3.0], &[3]).requires_grad();
        let y = x.clamp(0.0, 1.0);
        assert_eq!(y.to_vec(), vec![0.0, 0.5, 1.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn abs_gradient_signs() {
        let x = Tensor::from_vec(vec![-1.5, 0.0, 2.0], &[3]).requires_grad();
        x.abs().sum().backward();
        assert_eq!(x.grad().unwrap(), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).requires_grad();
        let y = x.add_row(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 2.0]); // summed over 2 rows
    }

    #[test]
    fn mul_col_scales_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let s = Tensor::from_vec(vec![2.0, 3.0], &[2]).requires_grad();
        let y = x.mul_col(&s);
        assert_eq!(y.to_vec(), vec![2.0, 4.0, 9.0, 12.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0, 2.0, 3.0, 3.0]);
        assert_eq!(s.grad().unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn mul_scalar_tensor_grads_both_ways() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
        let s = Tensor::scalar(2.0).requires_grad();
        let y = x.mul_scalar_tensor(&s);
        assert_eq!(y.to_vec(), vec![2.0, 4.0, 6.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0; 3]);
        assert_eq!(s.grad().unwrap(), vec![6.0]); // sum of x
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }
}
