//! Broadcast-aware elementwise ops (numeric-style shape compatibility).
//!
//! Compatibility rule (the NumPy convention): shapes are compared
//! right-aligned, axis by axis; a pair of axis lengths is compatible when
//! they are equal or either is 1. Missing leading axes count as 1. The
//! broadcast result takes the max of each pair.
//!
//! Neither operand is ever materialised at the broadcast shape: iteration
//! walks the output row-major with an odometer while each operand advances
//! by its own stride — 0 along broadcast axes. Backward reduces the output
//! gradient over the broadcast axes of each parent by accumulating in
//! ascending row-major output order, serially, so gradients are exactly
//! reproducible (and independent of thread count by construction).
//!
//! The pre-existing row/column helpers ([`Tensor::add_row`],
//! [`Tensor::mul_row`], [`Tensor::mul_col`]) are thin wrappers over these
//! ops — they keep their historical shape panics but share this kernel.

use super::{out_grad, result};
use crate::shape::{Shape, MAX_RANK};
use crate::tensor::Tensor;

/// True when `a` and `b` broadcast together (numeric semantics).
pub fn compatible(a: &Shape, b: &Shape) -> bool {
    broadcast_shape(a, b).is_some()
}

/// The broadcast result shape, or `None` when incompatible.
pub fn broadcast_shape(a: &Shape, b: &Shape) -> Option<Shape> {
    let rank = a.rank().max(b.rank());
    let mut dims = [1usize; MAX_RANK];
    for (axis, dim) in dims.iter_mut().enumerate().take(rank) {
        // Right-aligned: axis counted from the trailing end.
        let da = aligned_dim(a, rank, axis);
        let db = aligned_dim(b, rank, axis);
        if da != db && da != 1 && db != 1 {
            return None;
        }
        *dim = da.max(db);
    }
    Some(Shape::new(&dims[..rank]))
}

/// Dim of `s` at `axis` of a rank-`rank` right-aligned frame (1 if absent).
fn aligned_dim(s: &Shape, rank: usize, axis: usize) -> usize {
    let offset = rank - s.rank();
    if axis < offset {
        1
    } else {
        s.dim(axis - offset)
    }
}

/// Row-major strides of `s` inside the broadcast frame `out`: 0 along axes
/// where `s` has length 1 but `out` does not.
fn bcast_strides(s: &Shape, out: &Shape) -> [usize; MAX_RANK] {
    let rank = out.rank();
    let own = s.strides();
    let offset = rank - s.rank();
    let mut strides = [0usize; MAX_RANK];
    for axis in 0..rank {
        if axis >= offset && s.dim(axis - offset) == out.dim(axis) {
            strides[axis] = own[axis - offset];
        }
        // Axes where s is absent or length-1 against a longer out axis keep
        // stride 0; a length-1 axis matching a length-1 out axis also gets
        // its true stride via the branch above (they're equal).
    }
    strides
}

/// Walk `out` row-major, handing each step `(out_index, a_offset, b_offset)`.
fn for_each_bcast(
    out: &Shape,
    a: &Shape,
    b: &Shape,
    mut f: impl FnMut(usize, usize, usize),
) {
    let rank = out.rank();
    let numel = out.numel();
    if rank == 0 {
        f(0, 0, 0);
        return;
    }
    let sa = bcast_strides(a, out);
    let sb = bcast_strides(b, out);
    let mut idx = [0usize; MAX_RANK];
    let (mut ao, mut bo) = (0usize, 0usize);
    for i in 0..numel {
        f(i, ao, bo);
        // Odometer increment from the innermost axis.
        for axis in (0..rank).rev() {
            idx[axis] += 1;
            ao += sa[axis];
            bo += sb[axis];
            if idx[axis] < out.dim(axis) {
                break;
            }
            idx[axis] = 0;
            ao -= sa[axis] * out.dim(axis);
            bo -= sb[axis] * out.dim(axis);
        }
    }
}

fn require_bcast(a: &Shape, b: &Shape, op: &str) -> Shape {
    broadcast_shape(a, b)
        .unwrap_or_else(|| panic!("{op}: shapes {a} and {b} are not broadcast-compatible"))
}

impl Tensor {
    /// Broadcasting `self + other`.
    pub fn add_bcast(&self, other: &Tensor) -> Tensor {
        let shape = require_bcast(self.shape(), other.shape(), "add_bcast");
        let mut data = vec![0.0f32; shape.numel()];
        {
            let (av, bv) = (self.data(), other.data());
            for_each_bcast(&shape, self.shape(), other.shape(), |i, ao, bo| {
                data[i] = av[ao] + bv[bo];
            });
        }
        let (a, b) = (self.clone(), other.clone());
        result(data, shape, vec![self.clone(), other.clone()], "add_bcast", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                let mut da = vec![0.0f32; a.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, ao, _| da[ao] += g[i]);
                a.accumulate_grad(&da);
            }
            if b.tracks_grad() {
                let mut db = vec![0.0f32; b.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, _, bo| db[bo] += g[i]);
                b.accumulate_grad(&db);
            }
        })
    }

    /// Broadcasting `self ⊙ other`.
    pub fn mul_bcast(&self, other: &Tensor) -> Tensor {
        let shape = require_bcast(self.shape(), other.shape(), "mul_bcast");
        let mut data = vec![0.0f32; shape.numel()];
        {
            let (av, bv) = (self.data(), other.data());
            for_each_bcast(&shape, self.shape(), other.shape(), |i, ao, bo| {
                data[i] = av[ao] * bv[bo];
            });
        }
        let (a, b) = (self.clone(), other.clone());
        result(data, shape, vec![self.clone(), other.clone()], "mul_bcast", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                let bv = b.data();
                let mut da = vec![0.0f32; a.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, ao, bo| {
                    da[ao] += g[i] * bv[bo];
                });
                a.accumulate_grad(&da);
            }
            if b.tracks_grad() {
                let av = a.data();
                let mut db = vec![0.0f32; b.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, ao, bo| {
                    db[bo] += g[i] * av[ao];
                });
                b.accumulate_grad(&db);
            }
        })
    }

    /// Broadcasting `self - other` (`a + (-1)·b` without the temporary:
    /// same kernel, negated accumulation).
    pub fn sub_bcast(&self, other: &Tensor) -> Tensor {
        let shape = require_bcast(self.shape(), other.shape(), "sub_bcast");
        let mut data = vec![0.0f32; shape.numel()];
        {
            let (av, bv) = (self.data(), other.data());
            for_each_bcast(&shape, self.shape(), other.shape(), |i, ao, bo| {
                data[i] = av[ao] - bv[bo];
            });
        }
        let (a, b) = (self.clone(), other.clone());
        result(data, shape, vec![self.clone(), other.clone()], "sub_bcast", move |out| {
            let g = out_grad(out);
            if a.tracks_grad() {
                let mut da = vec![0.0f32; a.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, ao, _| da[ao] += g[i]);
                a.accumulate_grad(&da);
            }
            if b.tracks_grad() {
                let mut db = vec![0.0f32; b.numel()];
                for_each_bcast(out.shape(), a.shape(), b.shape(), |i, _, bo| db[bo] -= g[i]);
                b.accumulate_grad(&db);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims)
    }

    type BcastCase = (&'static [usize], &'static [usize], Option<&'static [usize]>);

    #[test]
    fn compatibility_matrix_mirrors_numeric_semantics() {
        // (a, b, expected broadcast dims or None)
        let cases: &[BcastCase] = &[
            (&[3], &[3], Some(&[3])),
            (&[2, 3], &[3], Some(&[2, 3])),
            (&[2, 3], &[1], Some(&[2, 3])),
            (&[2, 1], &[1, 3], Some(&[2, 3])),
            (&[4, 1, 5], &[3, 1], Some(&[4, 3, 5])),
            (&[], &[2, 2], Some(&[2, 2])),
            (&[1], &[7], Some(&[7])),
            (&[2, 3], &[2], None),
            (&[3, 2], &[2, 3], None),
            (&[4, 5], &[5, 4], None),
        ];
        for (da, db, want) in cases {
            let (a, b) = (shape(da), shape(db));
            match want {
                Some(dims) => {
                    assert!(compatible(&a, &b), "{a} vs {b} should be compatible");
                    assert_eq!(broadcast_shape(&a, &b).unwrap().dims(), *dims, "{a} vs {b}");
                    // Symmetry.
                    assert_eq!(broadcast_shape(&b, &a).unwrap().dims(), *dims);
                }
                None => {
                    assert!(!compatible(&a, &b), "{a} vs {b} should be rejected");
                    assert!(!compatible(&b, &a));
                }
            }
        }
    }

    #[test]
    fn add_bcast_row_and_col_vectors() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(m.add_bcast(&row).to_vec(), vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        assert_eq!(m.add_bcast(&col).to_vec(), vec![101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    fn mul_bcast_outer_product_via_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[1, 3]);
        let y = a.mul_bcast(&b);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.to_vec(), vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn bcast_backward_reduces_over_broadcast_axes() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).requires_grad();
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).requires_grad();
        m.mul_bcast(&row).sum().backward();
        // d/d m = row broadcast; d/d row = column sums of m.
        assert_eq!(m.grad().unwrap(), vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0]);
        assert_eq!(row.grad().unwrap(), vec![1.0 + 4.0, 2.0 + 5.0, 3.0 + 6.0]);
    }

    #[test]
    fn sub_bcast_negates_broadcast_side() {
        let m = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).requires_grad();
        let v = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let y = m.sub_bcast(&v);
        assert_eq!(y.to_vec(), vec![4.0, 4.0, 6.0, 6.0]);
        y.sum().backward();
        assert_eq!(m.grad().unwrap(), vec![1.0; 4]);
        assert_eq!(v.grad().unwrap(), vec![-2.0, -2.0]);
    }

    #[test]
    fn scalar_broadcasts_against_anything() {
        let s = Tensor::scalar(2.0).requires_grad();
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let y = m.mul_bcast(&s);
        assert_eq!(y.to_vec(), vec![2.0, 4.0, 6.0, 8.0]);
        y.sum().backward();
        assert_eq!(s.grad().unwrap(), vec![10.0]);
        assert_eq!(m.grad().unwrap(), vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn incompatible_shapes_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2]);
        let _ = a.add_bcast(&b);
    }
}
