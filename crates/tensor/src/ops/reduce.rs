//! Reductions: sums, means, row/column reductions, max.
//!
//! Per-row reductions (each output element reads a disjoint input row) are
//! parallelised above [`par::PAR_ELEMWISE_THRESHOLD`]. Global reductions
//! (`sum`, `sum_axis0`) stay serial: splitting them would change the f32
//! accumulation order and break the bit-identical-at-any-thread-count
//! guarantee.

use super::{out_grad, result};
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.data().iter().sum();
        let a = self.clone();
        let n = self.numel();
        result(vec![total], Shape::scalar(), vec![self.clone()], "sum", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out)[0];
                a.accumulate_grad(&vec![g; n]);
            }
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Tensor {
        let n = self.numel() as f32;
        self.sum().mul_scalar(1.0 / n)
    }

    /// Sum along the last axis: `[.., D] -> [..]` flattened to `[rows]`.
    pub fn sum_rows(&self) -> Tensor {
        let d = self.shape().last_dim();
        let rows = self.shape().leading();
        let src_ref = self.data();
        let src: &[f32] = &src_ref;
        let mut data = vec![0.0f32; rows];
        par::par_chunks_mut(&mut data, 1, par::auto_threads(rows * d), |start, block| {
            for (i, dst) in block.iter_mut().enumerate() {
                let r = start + i;
                *dst = src[r * d..(r + 1) * d].iter().sum();
            }
        });
        drop(src_ref);
        let a = self.clone();
        result(data, Shape::new(&[rows]), vec![self.clone()], "sum_rows", move |out| {
            if a.tracks_grad() {
                let g_vec = out_grad(out);
                let g: &[f32] = &g_vec;
                let mut da = vec![0.0f32; rows * d];
                if d > 0 {
                    par::par_chunks_mut(&mut da, d, par::auto_threads(rows * d), |start, block| {
                        for (i, row) in block.chunks_exact_mut(d).enumerate() {
                            row.fill(g[start + i]);
                        }
                    });
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Mean along the last axis: `[rows, D] -> [rows]`.
    pub fn mean_rows(&self) -> Tensor {
        let d = self.shape().last_dim() as f32;
        self.sum_rows().mul_scalar(1.0 / d)
    }

    /// Sum along axis 0 of a rank-2 tensor: `[N, D] -> [D]`.
    pub fn sum_axis0(&self) -> Tensor {
        let (n, d) = self.shape().as_matrix();
        let src = self.data();
        let mut data = vec![0.0f32; d];
        for r in 0..n {
            for (dst, v) in data.iter_mut().zip(&src[r * d..(r + 1) * d]) {
                *dst += *v;
            }
        }
        drop(src);
        let a = self.clone();
        result(data, Shape::new(&[d]), vec![self.clone()], "sum_axis0", move |out| {
            if a.tracks_grad() {
                let g = out_grad(out);
                let mut da = vec![0.0f32; n * d];
                for r in 0..n {
                    da[r * d..(r + 1) * d].copy_from_slice(&g);
                }
                a.accumulate_grad(&da);
            }
        })
    }

    /// Mean along axis 0 of a rank-2 tensor: `[N, D] -> [D]`.
    pub fn mean_axis0(&self) -> Tensor {
        let (n, _) = self.shape().as_matrix();
        self.sum_axis0().mul_scalar(1.0 / n as f32)
    }

    /// Row-wise maximum values of a rank-2 tensor (no gradient: used only in
    /// data-preprocessing paths such as PCP's Eq. 8).
    pub fn max_rows(&self) -> Vec<f32> {
        let (rows, d) = self.shape().as_matrix();
        let src = self.data();
        (0..rows)
            .map(|r| src[r * d..(r + 1) * d].iter().copied().fold(f32::NEG_INFINITY, f32::max))
            .collect()
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, d) = self.shape().as_matrix();
        let src = self.data();
        (0..rows)
            .map(|r| {
                let row = &src[r * d..(r + 1) * d];
                let mut best = 0;
                for (i, v) in row.iter().enumerate() {
                    if *v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius / L2 norm of all elements (scalar tensor, differentiable).
    pub fn l2_norm(&self) -> Tensor {
        self.square().sum().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use crate::tensor::Tensor;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum().item(), 10.0);
        assert_eq!(t.mean().item(), 2.5);
    }

    #[test]
    fn sum_grad_is_ones_scaled() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
        t.sum().mul_scalar(2.0).backward();
        assert_eq!(t.grad().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn sum_rows_values_and_grads() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).requires_grad();
        let s = t.sum_rows();
        assert_eq!(s.to_vec(), vec![6.0, 15.0]);
        // weight rows differently to check routing
        let w = Tensor::from_vec(vec![1.0, 10.0], &[2]);
        s.mul(&w).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0, 1.0, 1.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn sum_axis0_values_and_grads() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).requires_grad();
        let s = t.sum_axis0();
        assert_eq!(s.to_vec(), vec![4.0, 6.0]);
        let w = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        s.mul(&w).sum().backward();
        assert_eq!(t.grad().unwrap(), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn mean_axis0_scales() {
        let t = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(t.mean_axis0().to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn max_and_argmax_rows() {
        let t = Tensor::from_vec(vec![1.0, 9.0, 3.0, 7.0, 2.0, 5.0], &[2, 3]);
        assert_eq!(t.max_rows(), vec![9.0, 7.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn l2_norm_of_3_4_is_5() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).requires_grad();
        let n = t.l2_norm();
        assert!((n.item() - 5.0).abs() < 1e-6);
        n.backward();
        let g = t.grad().unwrap();
        assert!((g[0] - 0.6).abs() < 1e-5);
        assert!((g[1] - 0.8).abs() < 1e-5);
    }
}
