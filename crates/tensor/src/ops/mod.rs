//! Differentiable tensor operations.
//!
//! Each op computes its forward result eagerly, then (if grad mode is on and
//! an input tracks gradients) records a backward closure via
//! [`crate::grad::record`]. Ops are exposed as methods on [`Tensor`].

pub mod activation;
pub mod broadcast;
pub mod elementwise;
pub mod fused;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod structure;

use crate::grad;
use crate::memory::Buffer;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Build an op result and record its backward closure.
pub(crate) fn result(
    data: Vec<f32>,
    shape: Shape,
    parents: Vec<Tensor>,
    name: &'static str,
    backward: impl Fn(&Tensor) + 'static,
) -> Tensor {
    let out = Tensor::from_buffer(Buffer::from_vec(data), shape);
    grad::record(&out, parents, name, backward);
    out
}

/// Read the output gradient of `out` (panics if backward reached an op whose
/// output gradient was never populated — a bug in the engine, not the user).
pub(crate) fn out_grad(out: &Tensor) -> Vec<f32> {
    out.grad().expect("autograd invariant: output gradient missing during backward")
}
