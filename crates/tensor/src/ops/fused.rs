//! Fused forward+derivative elementwise maps (dfdx-style `unary_map` /
//! `binary_map`).
//!
//! The unfused pattern costs extra sweeps and allocations: forward computes
//! the value, then backward re-reads the saved input (or a cloned output)
//! and runs another elementwise pass to build each parent's gradient chain.
//! The fused pattern computes the value *and* the local derivative
//! coefficients in one parallel sweep at forward time; backward collapses
//! to a single `g ⊙ d` zip per parent.
//!
//! Autograd contract:
//!
//! * Derivative buffers are only materialised when grad mode is on and a
//!   parent tracks gradients — inference (`no_grad`) pays one sweep and
//!   zero extra memory.
//! * The closure `f` must return derivatives evaluated at the *input*
//!   point; the backward closure never re-reads parent data, so the op
//!   stays correct even if a parent's buffer is later mutated in-place by
//!   an optimiser step.
//! * Both sweeps run through [`par`] with the usual size threshold, so
//!   results are bit-identical at every thread count.

use super::{out_grad, result};
use crate::grad;
use crate::par;
use crate::tensor::Tensor;

/// Fused unary op: `f(x) -> (value, dvalue/dx)`.
pub(crate) fn unary_map(
    x: &Tensor,
    name: &'static str,
    f: impl Fn(f32) -> (f32, f32) + Sync,
) -> Tensor {
    let n = x.numel();
    let threads = par::auto_threads(n);
    let mut out = vec![0.0f32; n];
    if grad::grad_enabled() && x.tracks_grad() {
        let mut dx = vec![0.0f32; n];
        par::map2_into(&x.data(), &mut out, &mut dx, threads, &f);
        let xin = x.clone();
        result(out, *x.shape(), vec![x.clone()], name, move |o| {
            if xin.tracks_grad() {
                let g = out_grad(o);
                let mut gx = vec![0.0f32; g.len()];
                par::zip_into(&g, &dx, &mut gx, par::auto_threads(g.len()), |g, d| g * d);
                xin.accumulate_grad(&gx);
            }
        })
    } else {
        par::map_into(&x.data(), &mut out, threads, |v| f(v).0);
        result(out, *x.shape(), vec![x.clone()], name, |_| {})
    }
}

/// Fused binary op over same-shape operands:
/// `f(a, b) -> (value, dvalue/da, dvalue/db)`.
pub(crate) fn binary_map(
    a: &Tensor,
    b: &Tensor,
    name: &'static str,
    f: impl Fn(f32, f32) -> (f32, f32, f32) + Sync,
) -> Tensor {
    debug_assert!(a.shape().same_as(b.shape()), "{name}: binary_map requires same shapes");
    let n = a.numel();
    let threads = par::auto_threads(n);
    let mut out = vec![0.0f32; n];
    if grad::grad_enabled() && (a.tracks_grad() || b.tracks_grad()) {
        let mut da = vec![0.0f32; n];
        let mut db = vec![0.0f32; n];
        par::zip3_into(&a.data(), &b.data(), &mut out, &mut da, &mut db, threads, &f);
        let (ai, bi) = (a.clone(), b.clone());
        result(out, *a.shape(), vec![a.clone(), b.clone()], name, move |o| {
            let g = out_grad(o);
            let threads = par::auto_threads(g.len());
            if ai.tracks_grad() {
                let mut gx = vec![0.0f32; g.len()];
                par::zip_into(&g, &da, &mut gx, threads, |g, d| g * d);
                ai.accumulate_grad(&gx);
            }
            if bi.tracks_grad() {
                let mut gx = vec![0.0f32; g.len()];
                par::zip_into(&g, &db, &mut gx, threads, |g, d| g * d);
                bi.accumulate_grad(&gx);
            }
        })
    } else {
        par::zip_into(&a.data(), &b.data(), &mut out, threads, |x, y| f(x, y).0);
        result(out, *a.shape(), vec![a.clone(), b.clone()], name, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::no_grad;

    #[test]
    fn unary_map_forward_and_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
        // y = x², dy/dx = 2x
        let y = unary_map(&x, "square_test", |v| (v * v, 2.0 * v));
        assert_eq!(y.to_vec(), vec![1.0, 4.0, 9.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn binary_map_forward_and_both_grads() {
        let a = Tensor::from_vec(vec![2.0, 3.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![5.0, 7.0], &[2]).requires_grad();
        let y = binary_map(&a, &b, "mul_test", |x, y| (x * y, y, x));
        assert_eq!(y.to_vec(), vec![10.0, 21.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 7.0]);
        assert_eq!(b.grad().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn no_grad_skips_derivative_buffers_but_matches_values() {
        let x = Tensor::from_vec(vec![0.5, 1.5], &[2]);
        let with = unary_map(&x, "exp_test", |v| {
            let e = v.exp();
            (e, e)
        });
        let without = no_grad(|| {
            unary_map(&x, "exp_test", |v| {
                let e = v.exp();
                (e, e)
            })
        });
        assert_eq!(with.to_vec(), without.to_vec());
    }

    #[test]
    fn partial_grad_tracking_only_touches_tracked_parent() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).requires_grad();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]); // untracked
        let y = binary_map(&a, &b, "mul_test", |x, y| (x * y, y, x));
        y.sum().backward();
        assert_eq!(a.grad().unwrap(), vec![3.0, 4.0]);
        assert!(b.grad().is_none());
    }
}
