//! Weight initialisers. All take a caller-provided RNG so experiments are
//! reproducible from a single seed.

use rand::Rng;

use crate::tensor::Tensor;

/// Sample one value from a unit normal via Box–Muller (keeps us independent
/// of `rand_distr`, which is not on the offline allowlist).
pub fn randn_value<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        let u2: f32 = rng.gen::<f32>();
        if u1 > f32::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
    }
}

/// Tensor of i.i.d. normal samples with the given std deviation.
pub fn randn<R: Rng>(dims: &[usize], std: f32, rng: &mut R) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| randn_value(rng) * std).collect();
    Tensor::from_vec(data, dims)
}

/// Tensor of i.i.d. uniform samples in `[lo, hi)`.
pub fn uniform<R: Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims)
}

/// Xavier/Glorot uniform initialisation for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], -bound, bound, rng)
}

/// Kaiming/He normal initialisation for ReLU-family layers.
pub fn kaiming_normal<R: Rng>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    randn(&[fan_in, fan_out], std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, &mut rng);
        let v = t.to_vec();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.to_vec().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = xavier_uniform(4, 4, &mut rng);
        let large = xavier_uniform(1024, 1024, &mut rng);
        let max_small = small.to_vec().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let max_large = large.to_vec().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn(&[16], 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.to_vec(), b.to_vec());
    }
}
