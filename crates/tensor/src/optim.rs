//! First-order optimisers over collections of leaf tensors.
//!
//! The paper trains with AdamW (lr = 5e-4). Optimisers hold their state
//! keyed by parameter position, so the same `Vec<Tensor>` must be passed to
//! every call (which is what [`crate::optim::Optimizer::step`] consumes).

use crate::io::{CheckpointError, StateDict};
use crate::tensor::Tensor;

/// Common optimiser interface: one `step` consumes the accumulated grads of
/// the registered parameters and then the caller usually calls `zero_grad`.
pub trait Optimizer {
    /// Apply one update using each parameter's accumulated gradient.
    /// Parameters without a gradient are skipped.
    fn step(&mut self);

    /// Clear all parameter gradients.
    fn zero_grad(&mut self);

    /// The registered parameters.
    fn params(&self) -> &[Tensor];

    /// Clip gradients to a maximum global L2 norm; returns the pre-clip norm.
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let mut total = 0.0f64;
        for p in self.params() {
            if let Some(g) = p.grad() {
                total += g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            }
        }
        let norm = (total.sqrt()) as f32;
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in self.params() {
                if let Some(g) = p.grad() {
                    let scaled: Vec<f32> = g.iter().map(|x| x * scale).collect();
                    p.zero_grad();
                    p.accumulate_grad(&scaled);
                }
            }
        }
        norm
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Sgd::with_momentum(params, lr, 0.0)
    }

    pub fn with_momentum(params: Vec<Tensor>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        Sgd { params, lr, momentum, velocity }
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            let mut data = p.data_mut();
            if self.momentum > 0.0 {
                for ((w, vel), gi) in data.as_mut_slice().iter_mut().zip(v.iter_mut()).zip(&g) {
                    *vel = self.momentum * *vel + *gi;
                    *w -= self.lr * *vel;
                }
            } else {
                for (w, gi) in data.as_mut_slice().iter_mut().zip(&g) {
                    *w -= self.lr * *gi;
                }
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

/// Adam (Kingma & Ba) without decoupled weight decay.
pub struct Adam {
    inner: AdamW,
}

impl Adam {
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Adam { inner: AdamW::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0) }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.inner.step();
    }
    fn zero_grad(&mut self) {
        self.inner.zero_grad();
    }
    fn params(&self) -> &[Tensor] {
        self.inner.params()
    }
}

/// AdamW: Adam with decoupled weight decay (the paper's optimiser).
pub struct AdamW {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl AdamW {
    /// AdamW with the paper's defaults except learning rate.
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        AdamW::with_config(params, lr, 0.9, 0.999, 1e-8, 0.01)
    }

    pub fn with_config(
        params: Vec<Tensor>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.numel()]).collect();
        AdamW { params, lr, beta1, beta2, eps, weight_decay, step_count: 0, m, v }
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Snapshot the optimiser state (first/second moments, step count,
    /// learning rate) into a [`StateDict`]. Together with the parameter
    /// values this makes training resume bit-faithful: restoring the
    /// moments preserves the exact effective per-parameter step sizes.
    pub fn state_dict(&self) -> StateDict {
        let mut dict = StateDict::new();
        for (i, (m, v)) in self.m.iter().zip(&self.v).enumerate() {
            dict.insert(format!("m.{i}"), Tensor::from_vec(m.clone(), &[m.len()]));
            dict.insert(format!("v.{i}"), Tensor::from_vec(v.clone(), &[v.len()]));
        }
        dict.insert_meta("step_count", self.step_count);
        dict.insert_meta("lr", f32::to_bits(self.lr) as u64);
        dict.insert_meta("param_count", self.params.len() as u64);
        dict
    }

    /// Restore state captured by [`AdamW::state_dict`]. The registered
    /// parameter list must match the one the snapshot was taken from.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> Result<(), CheckpointError> {
        let stored = dict.meta("param_count").ok_or_else(|| CheckpointError::InvalidEntry {
            context: "optimizer state missing param_count".into(),
        })? as usize;
        if stored != self.params.len() {
            return Err(CheckpointError::InvalidEntry {
                context: format!(
                    "optimizer state holds {stored} parameters, live optimizer has {}",
                    self.params.len()
                ),
            });
        }
        for (i, (m, v)) in self.m.iter_mut().zip(self.v.iter_mut()).enumerate() {
            for (slot, key) in [(&mut *m, format!("m.{i}")), (&mut *v, format!("v.{i}"))] {
                let saved = dict.get(&key).ok_or_else(|| CheckpointError::InvalidEntry {
                    context: format!("optimizer state missing {key:?}"),
                })?;
                if saved.numel() != slot.len() {
                    return Err(CheckpointError::ShapeMismatch {
                        name: key,
                        expected: vec![slot.len()],
                        found: saved.dims().to_vec(),
                    });
                }
                slot.copy_from_slice(&saved.to_vec());
            }
        }
        self.step_count = dict.meta("step_count").ok_or_else(|| CheckpointError::InvalidEntry {
            context: "optimizer state missing step_count".into(),
        })?;
        if let Some(bits) = dict.meta("lr") {
            self.lr = f32::from_bits(bits as u32);
        }
        Ok(())
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.step_count += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for ((p, m), v) in self.params.iter().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            let Some(g) = p.grad() else { continue };
            let mut data = p.data_mut();
            for (((w, mi), vi), gi) in
                data.as_mut_slice().iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(&g)
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * *gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * *gi * *gi;
                let mhat = *mi / bias1;
                let vhat = *vi / bias2;
                // Decoupled weight decay (applied to the weight, not the grad).
                *w -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }

    fn zero_grad(&mut self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimise (w - 3)^2 and check convergence.
    fn quadratic_converges(mut opt: impl Optimizer, w: Tensor, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let loss = w.add_scalar(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
        w.item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = Tensor::scalar(0.0).requires_grad();
        let final_w = quadratic_converges(Sgd::new(vec![w.clone()], 0.1), w, 100);
        assert!((final_w - 3.0).abs() < 1e-3, "got {final_w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = Tensor::scalar(0.0).requires_grad();
        let final_w =
            quadratic_converges(Sgd::with_momentum(vec![w.clone()], 0.05, 0.9), w, 200);
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = Tensor::scalar(0.0).requires_grad();
        let final_w = quadratic_converges(Adam::new(vec![w.clone()], 0.1), w, 300);
        assert!((final_w - 3.0).abs() < 1e-2, "got {final_w}");
    }

    #[test]
    fn adamw_converges_and_decays() {
        let w = Tensor::scalar(0.0).requires_grad();
        let final_w = quadratic_converges(AdamW::new(vec![w.clone()], 0.1), w, 300);
        // With weight decay the optimum is slightly below 3.
        assert!((final_w - 3.0).abs() < 0.1, "got {final_w}");
    }

    #[test]
    fn params_without_grad_are_skipped() {
        let w = Tensor::scalar(5.0).requires_grad();
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.step(); // no grad accumulated
        assert_eq!(w.item(), 5.0);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let w = Tensor::from_vec(vec![0.0, 0.0], &[2]).requires_grad();
        w.accumulate_grad(&[3.0, 4.0]); // norm 5
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        let pre = opt.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-5);
        let g = w.grad().unwrap();
        let norm = (g[0] * g[0] + g[1] * g[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_leaves_small_grads_untouched() {
        let w = Tensor::from_vec(vec![0.0], &[1]).requires_grad();
        w.accumulate_grad(&[0.5]);
        let mut opt = Sgd::new(vec![w.clone()], 0.1);
        opt.clip_grad_norm(1.0);
        assert_eq!(w.grad().unwrap(), vec![0.5]);
    }

    /// Run `steps` AdamW steps of (w - 3)^2 on `w`.
    fn adamw_steps(opt: &mut AdamW, w: &Tensor, steps: usize) {
        for _ in 0..steps {
            opt.zero_grad();
            let loss = w.add_scalar(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
    }

    #[test]
    fn adamw_state_dict_resume_is_bit_faithful() {
        // Uninterrupted: 40 steps straight.
        let w_ref = Tensor::scalar(0.0).requires_grad();
        let mut opt_ref = AdamW::new(vec![w_ref.clone()], 0.1);
        adamw_steps(&mut opt_ref, &w_ref, 40);

        // Interrupted: 15 steps, snapshot, fresh optimiser, restore, 25 more.
        let w = Tensor::scalar(0.0).requires_grad();
        let mut opt = AdamW::new(vec![w.clone()], 0.1);
        adamw_steps(&mut opt, &w, 15);
        let snapshot = opt.state_dict();
        let w_values = w.to_vec();

        let w2 = Tensor::from_vec(w_values, &[1]).requires_grad();
        let mut opt2 = AdamW::new(vec![w2.clone()], 999.0); // lr restored from snapshot
        opt2.load_state_dict(&snapshot).unwrap();
        assert_eq!(opt2.lr(), 0.1);
        adamw_steps(&mut opt2, &w2, 25);

        assert_eq!(w_ref.to_vec(), w2.to_vec(), "resume diverged from uninterrupted run");
    }

    #[test]
    fn adamw_load_rejects_mismatched_state() {
        let w = Tensor::scalar(0.0).requires_grad();
        let opt = AdamW::new(vec![w.clone()], 0.1);
        let snapshot = opt.state_dict();

        // Wrong parameter count.
        let a = Tensor::scalar(0.0).requires_grad();
        let b = Tensor::scalar(0.0).requires_grad();
        let mut opt2 = AdamW::new(vec![a, b], 0.1);
        assert!(opt2.load_state_dict(&snapshot).is_err());

        // Wrong parameter shape.
        let wide = Tensor::zeros(&[3]).requires_grad();
        let mut opt3 = AdamW::new(vec![wide], 0.1);
        assert!(opt3.load_state_dict(&snapshot).is_err());
    }
}
