//! B-panel packing for the packed GEMM stack (see DESIGN.md §9).
//!
//! The blocked kernels stream the right operand `B` row by row with stride
//! `n`; once `B` outgrows L2 every micro-kernel sweep walks strided memory.
//! Packing rewrites `B` once — panel by panel — into a contiguous,
//! cache-line-aligned buffer laid out exactly in the order the micro-kernel
//! consumes it, so the inner loop reads a single forward-moving stream:
//!
//! * The reduction dimension `k` is cut into panels of [`KC`] rows
//!   (`KC · NR · 4` bytes per strip — L1-resident).
//! * Within a panel, columns are grouped into strips of [`NR`] (the
//!   micro-kernel width). A strip stores its panel k-major: the `NR`
//!   column values for consecutive `kk` are adjacent, which is one aligned
//!   64-byte load pair per k step.
//! * The last strip of a row is zero-padded to `NR`. Padding lanes are
//!   computed and discarded at writeback; they never touch `c`, so the
//!   per-element schedule of valid lanes is unchanged.
//!
//! Packing is a pure, deterministic data movement (no arithmetic), so it
//! cannot change results — property-tested by the pack→unpack round-trip
//! in `crates/tensor/tests/proptest_pack.rs`.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ptr::NonNull;

/// Micro-kernel width: output columns processed per tile (two 8-lane
/// groups, matching a pair of 256-bit vector registers).
pub const NR: usize = 16;

/// Rows per k panel. A strip of a panel is `KC × NR` floats = 16 KiB, which
/// stays L1-resident while the macro-kernel re-sweeps it for every row
/// group. A multiple of 8 so panel edges never split an unrolled group.
pub const KC: usize = 256;

/// Micro-kernel height: output rows processed per tile.
pub const MR: usize = 4;

/// Cache-line-aligned, zero-initialised f32 buffer. `Vec<f32>` only
/// guarantees 4-byte alignment; packed panels want their 64-byte strips on
/// cache-line boundaries so every k step of the micro-kernel touches
/// exactly two lines.
pub struct AlignedBuf {
    ptr: NonNull<f32>,
    len: usize,
}

/// Alignment of [`AlignedBuf`] allocations (one x86 cache line).
pub const BUF_ALIGN: usize = 64;

impl AlignedBuf {
    /// Zeroed buffer of `len` floats, 64-byte aligned.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBuf { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0) and valid alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            std::alloc::handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f32>(), BUF_ALIGN)
            .expect("AlignedBuf: layout overflow")
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: ptr is valid for len floats (or dangling with len 0,
        // where from_raw_parts of a dangling pointer with len 0 is fine).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in `zeroed` with the identical layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

// SAFETY: AlignedBuf is a plain owned f32 buffer with no interior
// mutability; sharing &AlignedBuf across scoped threads is as safe as
// sharing &[f32].
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

/// A `k × n` right operand packed into k-panels of `NR`-wide column strips.
pub struct PackedB {
    k: usize,
    n: usize,
    buf: AlignedBuf,
}

impl PackedB {
    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of `NR`-wide column strips (last one may be padded).
    pub fn n_strips(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Bytes resident in the packed buffer (for perf accounting).
    pub fn packed_bytes(&self) -> usize {
        self.buf.len() * std::mem::size_of::<f32>()
    }

    /// The packed block for strip `s` of the panel starting at row `kk0`
    /// with height `h`: a contiguous `h × NR` slab, k-major.
    #[inline]
    pub fn strip(&self, kk0: usize, h: usize, s: usize) -> &[f32] {
        debug_assert_eq!(kk0 % KC, 0, "panel start must be a KC multiple");
        debug_assert!(s < self.n_strips());
        let base = kk0 * self.n_strips() * NR + s * h * NR;
        &self.buf[base..base + h * NR]
    }

    fn alloc(k: usize, n: usize) -> PackedB {
        let strips = n.div_ceil(NR);
        PackedB { k, n, buf: AlignedBuf::zeroed(k * strips * NR) }
    }
}

/// Pack a row-major `k × n` matrix.
pub fn pack_b(b: &[f32], k: usize, n: usize) -> PackedB {
    assert_eq!(b.len(), k * n, "pack_b: buffer/shape mismatch");
    let mut packed = PackedB::alloc(k, n);
    let strips = packed.n_strips();
    let dst = packed.buf.as_mut_slice();
    let mut kk0 = 0usize;
    while kk0 < k {
        let h = KC.min(k - kk0);
        let panel_base = kk0 * strips * NR;
        for s in 0..strips {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            let strip_base = panel_base + s * h * NR;
            for kk in 0..h {
                let src = &b[(kk0 + kk) * n + j0..(kk0 + kk) * n + j0 + w];
                dst[strip_base + kk * NR..strip_base + kk * NR + w].copy_from_slice(src);
                // Lanes w..NR stay zero from allocation.
            }
        }
        kk0 += KC;
    }
    packed
}

/// Pack the *transpose* of a row-major `n × k` matrix — i.e. the logical
/// right operand of `gemm_nt` (`c[i,j] = Σ_kk a[i,kk] · bt[j,kk]`) in the
/// same layout [`pack_b`] produces, without materialising the transpose.
pub fn pack_b_t(bt: &[f32], n: usize, k: usize) -> PackedB {
    assert_eq!(bt.len(), n * k, "pack_b_t: buffer/shape mismatch");
    let mut packed = PackedB::alloc(k, n);
    let strips = packed.n_strips();
    let dst = packed.buf.as_mut_slice();
    let mut kk0 = 0usize;
    while kk0 < k {
        let h = KC.min(k - kk0);
        let panel_base = kk0 * strips * NR;
        for s in 0..strips {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            let strip_base = panel_base + s * h * NR;
            for l in 0..w {
                let col = &bt[(j0 + l) * k..(j0 + l) * k + k];
                for kk in 0..h {
                    dst[strip_base + kk * NR + l] = col[kk0 + kk];
                }
            }
        }
        kk0 += KC;
    }
    packed
}

/// Unpack back to a row-major `k × n` matrix — the inverse of [`pack_b`]
/// (padding lanes dropped). Exists for the round-trip property tests; the
/// kernels never unpack.
pub fn unpack(packed: &PackedB) -> Vec<f32> {
    let (k, n) = (packed.k, packed.n);
    let mut out = vec![0.0f32; k * n];
    let strips = packed.n_strips();
    let mut kk0 = 0usize;
    while kk0 < k {
        let h = KC.min(k - kk0);
        for s in 0..strips {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            let strip = packed.strip(kk0, h, s);
            for kk in 0..h {
                out[(kk0 + kk) * n + j0..(kk0 + kk) * n + j0 + w]
                    .copy_from_slice(&strip[kk * NR..kk * NR + w]);
            }
        }
        kk0 += KC;
    }
    out
}

/// Transpose a row-major `m × k` matrix into a fresh row-major `k × m`
/// buffer (`out[p·m + i] = a[i·k + p]`) — the `gemm_tn` front end, so the
/// TN variant can reuse the same packed macro-kernel with contiguous left
/// rows. Pure data movement, no arithmetic.
pub fn transpose_mk(a: &[f32], m: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "transpose_mk: buffer/shape mismatch");
    let mut out = vec![0.0f32; m * k];
    // Blocked 32×32 transpose keeps both source and destination tiles
    // cache-resident for large operands.
    const TB: usize = 32;
    let mut i0 = 0usize;
    while i0 < m {
        let i1 = (i0 + TB).min(m);
        let mut p0 = 0usize;
        while p0 < k {
            let p1 = (p0 + TB).min(k);
            for i in i0..i1 {
                for p in p0..p1 {
                    out[p * m + i] = a[i * k + p];
                }
            }
            p0 = p1;
        }
        i0 = i1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 8) as f32 / (1 << 22) as f32 - 2.0
            })
            .collect()
    }

    #[test]
    fn pack_unpack_roundtrip_spot_sizes() {
        for (k, n) in [(1, 1), (3, 5), (16, 16), (17, 33), (KC + 3, NR * 2 + 7), (2 * KC, 1)] {
            let b = filled(k * n, (k * 31 + n) as u32);
            let packed = pack_b(&b, k, n);
            assert_eq!(unpack(&packed), b, "k={k} n={n}");
        }
    }

    #[test]
    fn pack_transposed_matches_explicit_transpose() {
        for (n, k) in [(3, 5), (17, 9), (NR + 1, KC + 5)] {
            let bt = filled(n * k, 77);
            // Explicit transpose then pack.
            let mut b = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let via_t = pack_b_t(&bt, n, k);
            let direct = pack_b(&b, k, n);
            assert_eq!(via_t.buf.as_slice(), direct.buf.as_slice(), "n={n} k={k}");
        }
    }

    #[test]
    fn strips_are_zero_padded() {
        let (k, n) = (4, 5); // one full strip would be 16 wide; 11 padded lanes
        let b = filled(k * n, 3);
        let packed = pack_b(&b, k, n);
        let strip = packed.strip(0, k, 0);
        for kk in 0..k {
            for l in n..NR {
                assert_eq!(strip[kk * NR + l], 0.0, "pad lane ({kk},{l}) not zero");
            }
        }
    }

    #[test]
    fn packed_buffer_is_cache_line_aligned() {
        let packed = pack_b(&filled(64 * 64, 9), 64, 64);
        assert_eq!(packed.buf.as_slice().as_ptr() as usize % BUF_ALIGN, 0);
    }

    #[test]
    fn transpose_mk_roundtrip() {
        let (m, k) = (37, 53);
        let a = filled(m * k, 5);
        let at = transpose_mk(&a, m, k);
        let back = transpose_mk(&at, k, m);
        assert_eq!(back, a);
        assert_eq!(at[7 * m + 3], a[3 * k + 7]);
    }

    #[test]
    fn empty_dims_pack_to_empty() {
        assert_eq!(pack_b(&[], 0, 7).packed_bytes(), 0);
        assert!(unpack(&pack_b(&[], 5, 0)).is_empty());
    }
}
