//! CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used by the CEMT v2
//! checkpoint container for per-entry and whole-file integrity checks.
//!
//! Table-driven and dependency-free. CRC-32 detects every burst error up to
//! 32 bits, so any single flipped or dropped byte in a checkpoint payload is
//! guaranteed to be caught.

/// Lookup table for one byte of input, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 state. Feed bytes with [`Hasher::update`], read the
/// digest with [`Hasher::finalize`].
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Hasher::new();
        h.update(b"123");
        h.update(b"456789");
        assert_eq!(h.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn single_byte_flips_change_digest() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
