//! Reverse-mode automatic differentiation.
//!
//! Every differentiable op records a [`Node`] on its output: the list of
//! parent tensors plus a closure that, given the output tensor (whose
//! gradient is already populated), accumulates gradients into the parents.
//! [`run_backward`] topologically sorts the reachable subgraph and invokes
//! the closures in reverse order.

use std::cell::Cell;
use std::collections::HashSet;

use crate::tensor::Tensor;

/// The autograd record attached to a non-leaf tensor.
pub(crate) struct Node {
    /// Parent tensors, in op-argument order.
    pub parents: Vec<Tensor>,
    /// Accumulates gradients into the parents. Receives the *output* tensor
    /// so the closure can read `out.grad()`.
    pub backward: Box<dyn Fn(&Tensor)>,
    /// Op name, for diagnostics.
    pub name: &'static str,
}

thread_local! {
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Run `f` with gradient recording disabled (like `torch.no_grad()`).
///
/// Ops executed inside the closure produce plain tensors with no autograd
/// nodes, which keeps evaluation cheap and memory-flat.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    GRAD_ENABLED.with(|flag| {
        let prev = flag.get();
        flag.set(false);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Whether ops should currently record autograd nodes.
pub fn grad_enabled() -> bool {
    GRAD_ENABLED.with(|flag| flag.get())
}

/// Attach a node to `out` if grad mode is on and any parent tracks grad.
pub(crate) fn record(
    out: &Tensor,
    parents: Vec<Tensor>,
    name: &'static str,
    backward: impl Fn(&Tensor) + 'static,
) {
    if !grad_enabled() {
        return;
    }
    if parents.iter().any(Tensor::tracks_grad) {
        out.set_node(Node { parents, backward: Box::new(backward), name });
    }
}

/// Topologically sort the graph reachable from `root` (post-order, so
/// reversing yields a valid execution order for backprop).
fn topo_sort(root: &Tensor) -> Vec<Tensor> {
    let mut order: Vec<Tensor> = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Iterative DFS: (tensor, child_cursor) pairs to avoid recursion limits
    // on deep transformer graphs.
    let mut stack: Vec<(Tensor, usize)> = vec![(root.clone(), 0)];
    visited.insert(root.id());
    while let Some((tensor, cursor)) = stack.pop() {
        let next_parent = {
            let node = tensor.inner.node.borrow();
            node.as_ref().and_then(|n| n.parents.get(cursor).cloned())
        };
        match next_parent {
            Some(parent) => {
                stack.push((tensor, cursor + 1));
                if parent.tracks_grad() && visited.insert(parent.id()) {
                    stack.push((parent, 0));
                }
            }
            None => order.push(tensor),
        }
    }
    order
}

/// Execute backprop from `root` seeded with `seed` (same length as root).
pub(crate) fn run_backward(root: &Tensor, seed: &[f32]) {
    assert_eq!(seed.len(), root.numel(), "backward seed length mismatch");
    root.accumulate_grad(seed);
    let order = topo_sort(root);
    for tensor in order.iter().rev() {
        let node = tensor.inner.node.borrow();
        if let Some(node) = node.as_ref() {
            debug_assert!(!node.name.is_empty());
            (node.backward)(tensor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_grad_suppresses_nodes() {
        let a = Tensor::ones(&[2]).requires_grad();
        let b = no_grad(|| a.mul_scalar(2.0));
        assert!(!b.has_grad_fn());
        let c = a.mul_scalar(2.0);
        assert!(c.has_grad_fn());
    }

    #[test]
    fn no_grad_restores_flag_on_nesting() {
        assert!(grad_enabled());
        no_grad(|| {
            assert!(!grad_enabled());
            no_grad(|| assert!(!grad_enabled()));
            assert!(!grad_enabled());
        });
        assert!(grad_enabled());
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = a*2 + a*3  =>  dy/da = 5 per element
        let a = Tensor::ones(&[3]).requires_grad();
        let left = a.mul_scalar(2.0);
        let right = a.mul_scalar(3.0);
        let y = left.add(&right).sum();
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn reused_tensor_in_single_op() {
        // y = sum(a ⊙ a) => dy/da = 2a
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).requires_grad();
        let y = a.mul(&a).sum();
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn constants_do_not_receive_grads() {
        let a = Tensor::ones(&[2]).requires_grad();
        let c = Tensor::full(&[2], 4.0); // no requires_grad
        let y = a.mul(&c).sum();
        y.backward();
        assert_eq!(a.grad().unwrap(), vec![4.0, 4.0]);
        assert!(c.grad().is_none());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut x = Tensor::ones(&[1]).requires_grad();
        let leaf = x.clone();
        for _ in 0..5_000 {
            x = x.add_scalar(0.0);
        }
        x.sum().backward();
        assert_eq!(leaf.grad().unwrap(), vec![1.0]);
    }
}
