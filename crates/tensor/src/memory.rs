//! Global live-bytes accounting for tensor buffers.
//!
//! The CrossEM paper reports maximum GPU memory per training epoch (measured
//! with NVIDIA Nsight). This reproduction runs on CPU, so the equivalent
//! signal is the peak number of bytes held live by tensor buffers: every
//! activation, weight, and gradient a training step keeps alive counts, and
//! pruning candidate pairs (the CrossEM+ optimisations) lowers the peak for
//! exactly the same reason it lowers GPU residency.
//!
//! Counters are process-global atomics so they work across crates without
//! threading a context through every API. [`reset_peak`] is called by the
//! bench harnesses at epoch boundaries.

use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Record an allocation of `bytes` and update the peak if necessary.
pub(crate) fn record_alloc(bytes: usize) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    // Lock-free peak update; races only ever under-estimate transiently and
    // converge because each loser retries with the latest peak.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(observed) => peak = observed,
        }
    }
}

/// Record the release of `bytes` (called from buffer `Drop`).
pub(crate) fn record_free(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// Bytes currently held by live tensor buffers.
pub fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Highest value of [`live_bytes`] observed since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Number of buffer allocations since process start (diagnostic only).
pub fn total_allocations() -> usize {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Reset the peak to the current live level. Call at an epoch boundary to
/// measure the peak of the next epoch in isolation.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A tracked, heap-allocated `f32` buffer. All tensor storage goes through
/// this type so the accounting above sees every allocation.
#[derive(Debug)]
pub struct Buffer {
    data: Vec<f32>,
}

impl Buffer {
    /// Allocate a zero-filled buffer of `len` elements.
    pub fn zeros(len: usize) -> Self {
        record_alloc(len * std::mem::size_of::<f32>());
        Buffer { data: vec![0.0; len] }
    }

    /// Take ownership of an existing vector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        record_alloc(data.len() * std::mem::size_of::<f32>());
        Buffer { data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        record_free(self.data.len() * std::mem::size_of::<f32>());
    }
}

impl std::ops::Deref for Buffer {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for Buffer {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_balance() {
        let before = live_bytes();
        {
            let b = Buffer::zeros(1024);
            assert_eq!(b.len(), 1024);
            assert!(live_bytes() >= before + 4096);
        }
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        reset_peak();
        let base = peak_bytes();
        let b1 = Buffer::zeros(2048);
        let observed = peak_bytes();
        assert!(observed >= base + 8192);
        drop(b1);
        // Peak must not decrease on free.
        assert_eq!(peak_bytes(), observed);
    }

    #[test]
    fn from_vec_counts_bytes() {
        let before = live_bytes();
        let b = Buffer::from_vec(vec![1.0; 10]);
        assert_eq!(live_bytes(), before + 40);
        assert_eq!(b.as_slice(), &[1.0; 10]);
    }
}
