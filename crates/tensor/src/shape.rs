//! Tensor shapes and index arithmetic.
//!
//! Shapes are dense row-major. The workspace only ever needs ranks 0–3
//! (scalars, vectors, matrices, and batched matrices for attention), so the
//! dims live in a small fixed-capacity array instead of a `Vec`.

/// Maximum supported rank.
pub const MAX_RANK: usize = 4;

/// A row-major tensor shape of rank ≤ [`MAX_RANK`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Build a shape from a dim slice. Panics if `dims.len() > MAX_RANK`.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "rank {} exceeds MAX_RANK {}",
            dims.len(),
            MAX_RANK
        );
        let mut arr = [1usize; MAX_RANK];
        arr[..dims.len()].copy_from_slice(dims);
        Shape { dims: arr, rank: dims.len() }
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: [1; MAX_RANK], rank: 0 }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Dims as a slice of length `rank()`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Dim at `axis`; panics when out of range.
    pub fn dim(&self, axis: usize) -> usize {
        assert!(axis < self.rank, "axis {axis} out of range for rank {}", self.rank);
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims[..self.rank].iter().product::<usize>().max(1)
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut strides = [1usize; MAX_RANK];
        if self.rank > 0 {
            for axis in (0..self.rank - 1).rev() {
                strides[axis] = strides[axis + 1] * self.dims[axis + 1];
            }
        }
        strides
    }

    /// Interpret as a matrix `[rows, cols]`. Rank-1 tensors are treated as a
    /// single row; panics on rank > 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.rank {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            2 => (self.dims[0], self.dims[1]),
            r => panic!("as_matrix on rank-{r} tensor"),
        }
    }

    /// Size of the trailing axis (1 for scalars).
    pub fn last_dim(&self) -> usize {
        if self.rank == 0 {
            1
        } else {
            self.dims[self.rank - 1]
        }
    }

    /// Number of "rows", i.e. numel / last_dim.
    pub fn leading(&self) -> usize {
        self.numel() / self.last_dim()
    }

    /// True when both shapes have identical dims (rank-sensitive).
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims() == other.dims()
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shape{:?}", self.dims())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_dims() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.last_dim(), 1);
        assert_eq!(s.leading(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        let st = s.strides();
        assert_eq!(&st[..3], &[12, 4, 1]);
    }

    #[test]
    fn matrix_views() {
        assert_eq!(Shape::new(&[5]).as_matrix(), (1, 5));
        assert_eq!(Shape::new(&[2, 7]).as_matrix(), (2, 7));
        let s = Shape::new(&[6, 8]);
        assert_eq!(s.leading(), 6);
        assert_eq!(s.last_dim(), 8);
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn dim_out_of_range_panics() {
        Shape::new(&[2]).dim(1);
    }
}
