//! Packed vs blocked GEMM tiers at matched shapes and thread counts.
//!
//! Run with `cargo bench -p cem-tensor --bench packed_gemm` (add
//! `--features simd` to time the AVX micro-kernel). The packed tier should
//! win decisively once `B` falls out of L2 (the 512³ points) and scale with
//! threads on multi-core hosts; the blocked tier is the baseline the
//! BENCH_perf.json `gemm` section tracks.

use cem_tensor::{kernels, par};
use criterion::{criterion_group, criterion_main, Criterion};

fn filled(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1 << 22) as f32 - 2.0
        })
        .collect()
}

fn bench_tiers(c: &mut Criterion) {
    for &(m, k, n) in &[(128usize, 512usize, 512usize), (512, 512, 512)] {
        let a = filled(m * k, 11);
        let b = filled(k * n, 22);
        for &threads in &[1usize, par::machine_threads()] {
            if threads != 1 && par::machine_threads() == 1 {
                continue;
            }
            let tag = format!("{m}x{k}x{n}_t{threads}");
            c.bench_function(&format!("gemm_blocked_{tag}"), |bench| {
                let mut out = vec![0.0f32; m * n];
                bench.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_blocked_with_threads(&a, &b, &mut out, m, k, n, threads);
                    out[0]
                });
            });
            c.bench_function(&format!("gemm_packed_{tag}"), |bench| {
                let mut out = vec![0.0f32; m * n];
                bench.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_packed_with_threads(&a, &b, &mut out, m, k, n, threads);
                    out[0]
                });
            });
            c.bench_function(&format!("gemm_nt_blocked_{tag}"), |bench| {
                let bt = filled(n * k, 33);
                let mut out = vec![0.0f32; m * n];
                bench.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_nt_blocked_with_threads(&a, &bt, &mut out, m, k, n, threads);
                    out[0]
                });
            });
            c.bench_function(&format!("gemm_nt_packed_{tag}"), |bench| {
                let bt = filled(n * k, 33);
                let mut out = vec![0.0f32; m * n];
                bench.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_nt_packed_with_threads(&a, &bt, &mut out, m, k, n, threads);
                    out[0]
                });
            });
        }
    }
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
