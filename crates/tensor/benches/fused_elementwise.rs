//! Fused vs unfused elementwise maps, and broadcast vs materialized bias.
//!
//! Run with `cargo bench -p cem-tensor --bench fused_elementwise`.
//!
//! The fused primitives (`par::map2_into` / `par::zip3_into`) compute the
//! forward value and derivative coefficients in one sweep over the input;
//! the unfused baseline mirrors the pre-fusion autograd, which swept the
//! input once forward and a second time at backward to recompute the
//! derivative. Both variants do the same arithmetic, so the delta is pure
//! memory traffic — the quantity fusion exists to remove.

use cem_tensor::{par, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};

fn filled(len: usize, seed: u32) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (state >> 8) as f32 / (1 << 22) as f32 - 2.0
        })
        .collect()
}

fn sigmoid_pair(x: f32) -> (f32, f32) {
    let y = 1.0 / (1.0 + (-x).exp());
    (y, y * (1.0 - y))
}

fn bench_fused_map(c: &mut Criterion) {
    const LEN: usize = 1 << 20;
    let src = filled(LEN, 7);
    let grad = filled(LEN, 9);

    // Unfused baseline: forward sweep, then at backward recompute the
    // derivative from the saved input while folding in the upstream grad.
    c.bench_function("sigmoid_fwd_bwd_unfused_1m", |bench| {
        let mut out = vec![0.0f32; LEN];
        let mut gx = vec![0.0f32; LEN];
        bench.iter(|| {
            par::map_into(&src, &mut out, 1, |x| sigmoid_pair(x).0);
            par::zip_into(&grad, &src, &mut gx, 1, |g, x| g * sigmoid_pair(x).1);
            gx[0]
        });
    });

    // Fused: one sweep yields value + derivative; backward is a cheap zip
    // against the upstream grad with no transcendental recompute.
    c.bench_function("sigmoid_fwd_bwd_fused_1m", |bench| {
        let mut out = vec![0.0f32; LEN];
        let mut dx = vec![0.0f32; LEN];
        let mut gx = vec![0.0f32; LEN];
        bench.iter(|| {
            par::map2_into(&src, &mut out, &mut dx, 1, sigmoid_pair);
            par::zip_into(&grad, &dx, &mut gx, 1, |g, d| g * d);
            gx[0]
        });
    });
}

fn bench_autograd_chain(c: &mut Criterion) {
    // End-to-end: a chain of fused unary ops through the tape, forward +
    // backward. All intermediates carry precomputed derivative buffers, so
    // backward never revisits a transcendental.
    let (rows, cols) = (256usize, 1024usize);
    c.bench_function("chain_sigmoid_tanh_exp_fwd_bwd_256x1024", |bench| {
        bench.iter(|| {
            let x = Tensor::from_vec(filled(rows * cols, 3), &[rows, cols]).requires_grad();
            let z = x.sigmoid().tanh().exp();
            z.backward();
            x.grad().map(|g| g[0]).unwrap_or(0.0)
        });
    });
}

fn bench_broadcast_bias(c: &mut Criterion) {
    let (rows, cols) = (512usize, 512usize);
    let x = Tensor::from_vec(filled(rows * cols, 5), &[rows, cols]);
    let bias = Tensor::from_vec(filled(cols, 6), &[cols]);

    // Materialized baseline: tile the bias to full size, then add.
    c.bench_function("bias_add_materialized_512x512", |bench| {
        bench.iter(|| {
            let mut tiled = vec![0.0f32; rows * cols];
            let b = bias.data();
            for r in 0..rows {
                tiled[r * cols..(r + 1) * cols].copy_from_slice(&b);
            }
            let t = Tensor::from_vec(tiled, &[rows, cols]);
            x.add(&t).data()[0]
        });
    });

    // Broadcast path: stride-0 iteration, no full-size temporary.
    c.bench_function("bias_add_broadcast_512x512", |bench| {
        bench.iter(|| x.add_bcast(&bias).data()[0]);
    });
}

criterion_group!(
    benches,
    bench_fused_map,
    bench_autograd_chain,
    bench_broadcast_bias
);
criterion_main!(benches);
